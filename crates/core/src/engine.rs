//! The MaSM engine: the storage-manager-level facade of §3.
//!
//! One engine manages one table: its clustered heap on the disk device,
//! its SSD update cache (in-memory buffer + materialized sorted runs),
//! its redo log, and the timestamp oracle that serializes individual
//! queries and updates. It exposes exactly the surface the paper argues
//! a DBMS needs ("MaSM can be implemented in the storage manager … it
//! does not require modification to the buffer manager, query processor
//! or query optimizer"):
//!
//! * [`MasmEngine::apply_update`] — ingest a well-formed update,
//! * [`MasmEngine::begin_scan`] — a table range scan that transparently
//!   merges cached updates (drop-in for `Table_range_scan`),
//! * [`MasmEngine::migrate`] — in-place migration of cached updates,
//! * [`MasmEngine::recover`] — crash recovery from the redo log.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use masm_blockrun::BlockCache;
use masm_pagestore::{Key, Page, Record, Schema, TableHeap, TsRangeScan};
use masm_storage::{CacheStatsSnapshot, CompressionReport, MergeReport, SessionHandle, SimDevice};
use masm_telemetry::{
    BufferStats, EngineStats, Histogram, OpLatencies, Registry, RunSetStats, Timer, Unit,
};

use crate::algo::RunSet;
use crate::config::MasmConfig;
use crate::error::{MasmError, MasmResult};
use crate::membuf::UpdateBuffer;
use crate::merge::{
    compact_block_runs, fold_duplicates, MergeDataUpdates, MergeUpdates, UpdateStream,
};
use crate::run::{
    build_run, lookup_in_run, recover_run, write_built, RunScan, SortedRun, SsdSpace,
};
use crate::ts::{Timestamp, TimestampOracle};
use crate::update::{UpdateOp, UpdateRecord};
use crate::wal::{Wal, WalRecord};

/// The engine's metric families: a [`Registry`] for export plus direct
/// `Arc<Histogram>` handles for the hot paths (registry lookup never
/// happens per operation). All six histograms record **virtual-ns**.
struct EngineMetrics {
    registry: Registry,
    ingest: Arc<Histogram>,
    get: Arc<Histogram>,
    scan_next: Arc<Histogram>,
    flush: Arc<Histogram>,
    migrate: Arc<Histogram>,
    block_fetch: Arc<Histogram>,
}

impl EngineMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        let h = |name, help| registry.histogram("op", name, Unit::VirtualNs, help);
        EngineMetrics {
            ingest: h(
                "ingest",
                "one apply_update call, including any flush it triggered",
            ),
            get: h("get", "one point lookup"),
            scan_next: h("scan_next", "one record yielded by a merged range scan"),
            flush: h("flush", "one buffer flush materializing a 1-pass run"),
            migrate: h("migrate", "one full or partial migration"),
            block_fetch: h("block_fetch", "one block obtained by a query run scan"),
            registry,
        }
    }

    fn snapshot(&self) -> OpLatencies {
        OpLatencies {
            ingest: self.ingest.snapshot(),
            get: self.get.snapshot(),
            scan_next: self.scan_next.snapshot(),
            flush: self.flush.snapshot(),
            migrate: self.migrate.snapshot(),
            block_fetch: self.block_fetch.snapshot(),
        }
    }
}

struct EngineState {
    buffer: UpdateBuffer,
    runs: RunSet,
    /// Active query timestamps → pinned query pages (one per open run).
    active_queries: BTreeMap<Timestamp, u64>,
    /// Total pinned query pages across active scans.
    pinned_pages: u64,
    /// SSD bytes of runs deleted while queries were still active; freed
    /// once the system quiesces.
    retired_bytes: u64,
    migrating: bool,
}

/// Outcome of one migration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Migration timestamp `t`.
    pub ts: Timestamp,
    /// Number of runs migrated.
    pub runs_migrated: usize,
    /// Update records merged into the main data.
    pub updates_applied: u64,
    /// Data pages written back.
    pub pages_written: u64,
}

/// Outcome of crash recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Updates restored into the in-memory buffer.
    pub updates_recovered: u64,
    /// Materialized runs re-registered.
    pub runs_recovered: usize,
    /// Whether an interrupted migration was re-driven to completion.
    pub redid_migration: bool,
}

/// The MaSM storage-manager engine for one table.
pub struct MasmEngine {
    heap: Arc<TableHeap>,
    ssd: SimDevice,
    cfg: MasmConfig,
    schema: Schema,
    /// Shared cache of decoded run blocks: every run scan of this
    /// engine — queries, merges, migrations — goes through it, so hot
    /// run pages are read off the SSD once.
    cache: Arc<BlockCache>,
    oracle: TimestampOracle,
    state: Mutex<EngineState>,
    quiesce: Condvar,
    wal: Mutex<Wal>,
    ingested_updates: AtomicU64,
    ingested_bytes: AtomicU64,
    /// Last commit timestamp per key, for first-committer-wins snapshot
    /// isolation (§3.6). A production system would truncate this by the
    /// oldest active transaction; we keep it simple.
    commit_index: Mutex<std::collections::HashMap<Key, Timestamp>>,
    /// Outcome of the most recent planned run merge (2-pass merge or
    /// compaction).
    last_merge: Mutex<Option<MergeReport>>,
    /// Cumulative totals across every planned merge this engine ran.
    merge_totals: Mutex<MergeReport>,
    /// Cumulative codec accounting across every run this engine built
    /// (or recovered): raw vs stored data-block bytes, blocks per codec.
    compression_totals: Mutex<CompressionReport>,
    /// Per-operation latency histograms + the metric registry behind
    /// [`MasmEngine::stats`].
    metrics: EngineMetrics,
}

impl std::fmt::Debug for MasmEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("MasmEngine")
            .field("buffered_updates", &st.buffer.len())
            .field("runs", &st.runs.len())
            .field("cached_bytes", &st.runs.live_bytes())
            .finish()
    }
}

impl MasmEngine {
    /// Create an engine over an existing (possibly empty) heap.
    pub fn new(
        heap: Arc<TableHeap>,
        ssd: SimDevice,
        wal_dev: SimDevice,
        schema: Schema,
        cfg: MasmConfig,
    ) -> MasmResult<Arc<Self>> {
        cfg.validate()?;
        let buffer = UpdateBuffer::new(cfg.update_buffer_bytes() as usize);
        let mut runs = RunSet::new();
        runs.set_space(SsdSpace::with_origin(cfg.ssd_region_base));
        // The engine only ever appends runs from its region base; prime
        // the head there so the very first run write on a *fresh* device
        // is classified sequential (design goal 2: random_writes == 0).
        // On a shared device that already has a head position this is a
        // no-op — another engine's accounting must not be rewritten.
        ssd.prime_head_position_if_unset(cfg.ssd_region_base);
        let cache = Arc::new(BlockCache::with_config(cfg.cache_config()));
        Ok(Arc::new(MasmEngine {
            heap,
            ssd,
            cfg,
            schema,
            cache,
            oracle: TimestampOracle::new(),
            state: Mutex::new(EngineState {
                buffer,
                runs,
                active_queries: BTreeMap::new(),
                pinned_pages: 0,
                retired_bytes: 0,
                migrating: false,
            }),
            quiesce: Condvar::new(),
            wal: Mutex::new(Wal::new(wal_dev, 0)),
            ingested_updates: AtomicU64::new(0),
            ingested_bytes: AtomicU64::new(0),
            commit_index: Mutex::new(std::collections::HashMap::new()),
            last_merge: Mutex::new(None),
            merge_totals: Mutex::new(MergeReport::default()),
            compression_totals: Mutex::new(CompressionReport::default()),
            metrics: EngineMetrics::new(),
        }))
    }

    /// Bulk-load the table (records sorted by key) and log the load so
    /// the heap metadata is recoverable.
    pub fn load_table(
        &self,
        session: &SessionHandle,
        records: impl IntoIterator<Item = Record>,
        fill: f64,
    ) -> MasmResult<()> {
        self.heap.bulk_load(session, records, fill)?;
        let (page_map, min_keys, record_count) = self.heap.metadata_snapshot();
        let base = page_map.first().copied().unwrap_or(0);
        self.wal.lock().append(
            session,
            &WalRecord::HeapLoaded {
                base,
                page_size: self.heap.config().page_size as u32,
                min_keys,
                record_count,
            },
        )?;
        Ok(())
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The engine configuration.
    pub fn config(&self) -> &MasmConfig {
        &self.cfg
    }

    /// The table heap.
    pub fn heap(&self) -> &Arc<TableHeap> {
        &self.heap
    }

    /// The SSD update-cache device (for statistics).
    pub fn ssd(&self) -> &SimDevice {
        &self.ssd
    }

    /// The shared block cache of decoded run blocks.
    pub fn block_cache(&self) -> &Arc<BlockCache> {
        &self.cache
    }

    /// Hit/miss counters of the block cache, including the split
    /// between evictable data-block bytes and pinned run-metadata bytes
    /// (zone maps + bloom filters).
    pub fn cache_stats(&self) -> CacheStatsSnapshot {
        self.cache.stats()
    }

    /// Outcome of the most recent planned run merge (2-pass merge or
    /// compaction), if any has run.
    pub fn last_merge_report(&self) -> Option<MergeReport> {
        *self.last_merge.lock()
    }

    /// Cumulative merge totals across the engine's lifetime.
    pub fn merge_stats(&self) -> MergeReport {
        *self.merge_totals.lock()
    }

    /// Cumulative codec accounting over every run this engine built or
    /// recovered: raw vs stored data-block bytes and per-codec block
    /// counts ([`CompressionReport::ratio`] is the on-disk compression
    /// ratio the configured [`crate::config::CodecChoice`] achieved).
    pub fn compression_stats(&self) -> CompressionReport {
        *self.compression_totals.lock()
    }

    fn record_merge(&self, report: MergeReport) {
        *self.last_merge.lock() = Some(report);
        self.merge_totals.lock().absorb(&report);
    }

    /// Fold a newly built (or recovered) run's codec accounting into
    /// the engine totals.
    fn record_compression(&self, run: &SortedRun) {
        self.compression_totals
            .lock()
            .absorb(&run.meta.compression());
    }

    /// Pin a run's metadata footprint (zone maps + bloom) in the cache
    /// accounting.
    fn account_run_added(&self, run: &SortedRun) {
        self.cache.retain_meta_bytes(run.memory_bytes());
    }

    /// Release the metadata footprint of runs about to be removed; must
    /// run **before** `remove_ids` while the runs are still registered.
    fn account_runs_removed(&self, st: &EngineState, ids: &[u64]) {
        let bytes: usize = st
            .runs
            .runs()
            .iter()
            .filter(|r| ids.contains(&r.id))
            .map(|r| r.memory_bytes())
            .sum();
        self.cache.release_meta_bytes(bytes);
    }

    /// The timestamp oracle.
    pub fn oracle(&self) -> &TimestampOracle {
        &self.oracle
    }

    /// Bytes of cached updates on the SSD (live runs).
    pub fn cached_bytes(&self) -> u64 {
        self.state.lock().runs.live_bytes()
    }

    /// Number of live materialized runs.
    pub fn run_count(&self) -> usize {
        self.state.lock().runs.len()
    }

    /// Number of updates waiting in the in-memory buffer.
    pub fn buffered_updates(&self) -> usize {
        self.state.lock().buffer.len()
    }

    /// Whether cached updates have reached the migration threshold.
    pub fn needs_migration(&self) -> bool {
        let st = self.state.lock();
        st.runs.needs_migration(&self.cfg)
    }

    /// Total updates ingested and their logical bytes (for
    /// write-amplification accounting).
    pub fn ingest_stats(&self) -> (u64, u64) {
        (
            self.ingested_updates.load(Ordering::Relaxed),
            self.ingested_bytes.load(Ordering::Relaxed),
        )
    }

    /// The unified engine snapshot: cache, merge, compression, device
    /// I/O + wear summary, buffer and run-set occupancy, and the six
    /// per-operation latency histograms — everything the paper's
    /// quantitative invariants need, in one [`EngineStats`] value
    /// (serializable via [`EngineStats::to_json`], differentiable via
    /// [`EngineStats::delta`]).
    ///
    /// Cheap enough to poll from a driver loop: two short mutex holds
    /// (engine state, WAL) plus atomic loads; the SSD wear summary is
    /// O(1) — no per-block map is walked.
    pub fn stats(&self) -> EngineStats {
        let (buffer, runs) = {
            let st = self.state.lock();
            (
                BufferStats {
                    updates: st.buffer.len() as u64,
                    bytes: st.buffer.bytes() as u64,
                    capacity_bytes: st.buffer.capacity() as u64,
                },
                RunSetStats {
                    count: st.runs.len() as u64,
                    cached_bytes: st.runs.live_bytes(),
                    ssd_capacity_bytes: self.cfg.ssd_capacity,
                },
            )
        };
        let wal = self.wal.lock().device().stats();
        EngineStats {
            at_ns: self.ssd.clock().now(),
            ingested_updates: self.ingested_updates.load(Ordering::Relaxed),
            ingested_bytes: self.ingested_bytes.load(Ordering::Relaxed),
            buffer,
            runs,
            cache: self.cache.stats(),
            merge: *self.merge_totals.lock(),
            compression: *self.compression_totals.lock(),
            ssd: self.ssd.stats(),
            ssd_wear: self.ssd.wear_stats(),
            wal,
            ops: self.metrics.snapshot(),
        }
    }

    /// The engine's metric registry (six `op.*` latency families), for
    /// catalog-style export: walk it with [`Registry::for_each`].
    pub fn metrics_registry(&self) -> &Registry {
        &self.metrics.registry
    }

    /// Atomically commit a transaction's private writes under
    /// first-committer-wins snapshot isolation (§3.6): if any written key
    /// was committed by another transaction after `start_ts`, the commit
    /// aborts with [`MasmError::Conflict`]. On success all writes carry
    /// one fresh commit timestamp.
    pub fn commit_writes(
        &self,
        session: &SessionHandle,
        start_ts: Timestamp,
        writes: Vec<(Key, UpdateOp)>,
    ) -> MasmResult<Timestamp> {
        let mut idx = self.commit_index.lock();
        for (key, _) in &writes {
            if idx.get(key).is_some_and(|&t| t > start_ts) {
                return Err(MasmError::Conflict { key: *key });
            }
        }
        let ts = self.oracle.next();
        for (key, _) in &writes {
            idx.insert(*key, ts);
        }
        drop(idx);
        for (key, op) in writes {
            self.apply_update_with_ts(session, UpdateRecord::new(ts, key, op))?;
        }
        Ok(ts)
    }

    /// Apply one well-formed update; returns its commit timestamp.
    pub fn apply_update(
        &self,
        session: &SessionHandle,
        key: Key,
        op: UpdateOp,
    ) -> MasmResult<Timestamp> {
        let ts = self.oracle.next();
        self.apply_update_with_ts(session, UpdateRecord::new(ts, key, op))?;
        Ok(ts)
    }

    /// Apply an update that already carries its commit timestamp
    /// (transaction commit path).
    pub fn apply_update_with_ts(
        &self,
        session: &SessionHandle,
        update: UpdateRecord,
    ) -> MasmResult<()> {
        let _t = Timer::start(&self.metrics.ingest, || session.now());
        self.ingested_updates.fetch_add(1, Ordering::Relaxed);
        self.ingested_bytes
            .fetch_add(update.encoded_len() as u64, Ordering::Relaxed);
        let mut st = self.state.lock();
        if st.buffer.is_full() {
            // MaSM-M (Fig. 8): steal an unused query page if one exists,
            // otherwise materialize a 1-pass run.
            let page = self.cfg.ssd_page_size;
            let stolen = (st.buffer.capacity() - st.buffer.base_capacity()) / page;
            let in_use = st.pinned_pages + stolen as u64;
            if self.cfg.alpha < 2.0 && in_use < self.cfg.query_pages() {
                st.buffer.steal_page(page);
            } else {
                self.flush_locked(session, &mut st, false)?;
            }
        }
        // Log after any flush so WAL order mirrors buffer membership:
        // recovery treats updates logged after the last 1-pass
        // RunCreated as the in-memory buffer's contents.
        self.wal
            .lock()
            .append(session, &WalRecord::Update(update.clone()))?;
        st.buffer.push(update);
        Ok(())
    }

    /// Materialize the in-memory buffer as a 1-pass sorted run.
    /// `allow_overflow` bypasses the capacity check (migration flushes
    /// must succeed — migration is what frees the space).
    fn flush_locked(
        &self,
        session: &SessionHandle,
        st: &mut EngineState,
        allow_overflow: bool,
    ) -> MasmResult<()> {
        if st.buffer.is_empty() {
            return Ok(());
        }
        if !allow_overflow
            && st.runs.live_bytes() + st.buffer.bytes() as u64 > self.cfg.ssd_capacity
        {
            return Err(MasmError::CacheFull {
                cached: st.runs.live_bytes(),
                capacity: self.cfg.ssd_capacity,
            });
        }
        // Time only real flushes (past both early returns): the
        // histogram's count doubles as the number of 1-pass runs
        // materialized.
        let _t = Timer::start(&self.metrics.flush, || session.now());
        let updates = st.buffer.drain_sorted();
        let updates = if self.cfg.merge_duplicates {
            let active: Vec<Timestamp> = st.active_queries.keys().copied().collect();
            fold_duplicates(updates, &self.schema, |t1, t2| {
                !active.iter().any(|&t| t1 < t && t <= t2)
            })
        } else {
            updates
        };
        // Build first: the block format's encoded size (compression,
        // zone maps, bloom, footer) is only known after building, and
        // the run's SSD extent must be allocated before it is written.
        let id = st.runs.next_id();
        let (mut run, encoded) = build_run(&self.cfg, id, 0, 1, &updates);
        let base = st.runs.alloc_space(run.bytes);
        run.rebase(base);
        write_built(session, &self.ssd, &run, &encoded)?;
        self.wal.lock().append(
            session,
            &WalRecord::RunCreated {
                id,
                base,
                bytes: run.bytes,
                count: run.count,
                passes: 1,
            },
        )?;
        self.account_run_added(&run);
        self.record_compression(&run);
        st.runs.add(Arc::new(run));
        Ok(())
    }

    /// Materialize any buffered updates as a 1-pass sorted run now.
    /// Public so callers (benchmarks, tests, maintenance jobs) can cut
    /// a run at a workload boundary instead of waiting for the buffer
    /// to fill; a no-op on an empty buffer.
    pub fn flush_buffer(&self, session: &SessionHandle) -> MasmResult<()> {
        let mut st = self.state.lock();
        self.flush_locked(session, &mut st, false)
    }

    /// §3.5 "Handling Skews": when duplicates abound, collapse every
    /// live run into one. Duplicate updates in *overlapping* key ranges
    /// fold (subject to the active-query guard); blocks that overlap no
    /// other run move verbatim without being decoded, so any duplicates
    /// *within* such a block survive until a later overlap or migration
    /// retires them — the zero-decode trade. (Flush-time folding
    /// already collapses most intra-run duplicates before they reach a
    /// run.) Returns the [`MergeReport`] of the planned merge —
    /// `report.inputs` is the number of runs compacted (0 when fewer
    /// than two runs were live). Fully disjoint inputs compact with
    /// `bytes_decoded == 0`: every block moves verbatim.
    pub fn compact_runs(&self, session: &SessionHandle) -> MasmResult<MergeReport> {
        let mut st = self.state.lock();
        let plan: Vec<Arc<SortedRun>> = st.runs.runs().to_vec();
        if plan.len() < 2 {
            return Ok(MergeReport::default());
        }
        self.merge_runs_with(session, &mut st, plan, true)
    }

    /// Merge the `N` earliest 1-pass runs into one 2-pass run (Fig. 8,
    /// scan-setup lines 5–8).
    fn merge_runs_locked(
        &self,
        session: &SessionHandle,
        st: &mut EngineState,
        plan: Vec<Arc<SortedRun>>,
    ) -> MasmResult<()> {
        self.merge_runs_with(session, st, plan, self.cfg.merge_duplicates)?;
        Ok(())
    }

    /// The plan → execute merge pipeline: [`compact_block_runs`] plans
    /// move/merge segments from the inputs' zone maps, relinks
    /// non-overlapping blocks verbatim, and decodes only genuinely
    /// overlapping key ranges (prefetching `fan_in` blocks deep).
    fn merge_runs_with(
        &self,
        session: &SessionHandle,
        st: &mut EngineState,
        plan: Vec<Arc<SortedRun>>,
        fold: bool,
    ) -> MasmResult<MergeReport> {
        let active: Vec<Timestamp> = st.active_queries.keys().copied().collect();
        let guard = |t1: Timestamp, t2: Timestamp| !active.iter().any(|&t| t1 < t && t <= t2);
        let (mut meta, encoded, report) = compact_block_runs(
            session,
            &self.ssd,
            &self.cfg,
            &self.schema,
            &plan,
            fold.then_some(&guard as &dyn Fn(Timestamp, Timestamp) -> bool),
        )?;
        let id = st.runs.next_id();
        let base = st.runs.alloc_space(meta.total_bytes);
        meta.base = base;
        let run = SortedRun::from_meta(id, 2, meta);
        // The simulator tracks one head position shared by reads and
        // writes, so the output's first write would classify as random
        // purely because the merge just *read* its input runs — on
        // flash the new sequential write stream pays no such penalty.
        // Prime at the extent base to drop only that cross-stream
        // artifact; writes within the run still classify on their own
        // (an out-of-order writer would surface as random_writes > 0),
        // and the flush path is untouched, so a genuine backward jump
        // after the allocator rewinds stays visible there.
        self.ssd.prime_head_position(base);
        write_built(session, &self.ssd, &run, &encoded)?;
        let old_ids: Vec<u64> = plan.iter().map(|r| r.id).collect();
        {
            let mut wal = self.wal.lock();
            wal.append(
                session,
                &WalRecord::RunCreated {
                    id,
                    base,
                    bytes: run.bytes,
                    count: run.count,
                    passes: 2,
                },
            )?;
            wal.append(session, &WalRecord::RunsDeleted(old_ids.clone()))?;
        }
        self.account_run_added(&run);
        self.record_compression(&run);
        st.runs.add(Arc::new(run));
        self.account_runs_removed(st, &old_ids);
        st.runs.remove_ids(&old_ids);
        self.record_merge(report);
        Ok(report)
    }

    /// Open a merged range scan of `[begin, end]` as of a fresh query
    /// timestamp. This replaces `Table_range_scan` in a query plan.
    pub fn begin_scan(
        self: &Arc<Self>,
        session: SessionHandle,
        begin: Key,
        end: Key,
    ) -> MasmResult<MergeScan> {
        self.begin_scan_at(session, begin, end, None, Vec::new())
    }

    /// Open a merged range scan at an explicit timestamp (snapshot
    /// isolation) with an optional private update overlay (a
    /// transaction's own writes; §3.6).
    pub fn begin_scan_at(
        self: &Arc<Self>,
        session: SessionHandle,
        begin: Key,
        end: Key,
        as_of: Option<Timestamp>,
        mut private: Vec<UpdateRecord>,
    ) -> MasmResult<MergeScan> {
        let mut st = self.state.lock();
        let query_ts = as_of.unwrap_or_else(|| self.oracle.next());

        // Fig. 8 scan setup, lines 1–4: flush a full buffer first. A
        // full SSD is not fatal here — the scan simply reads the buffer
        // through Mem_scan; the engine reports `needs_migration`.
        if st.buffer.bytes() >= self.cfg.update_buffer_bytes() as usize {
            match self.flush_locked(&session, &mut st, false) {
                Ok(()) | Err(MasmError::CacheFull { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        // Lines 5–8: cap the number of open runs by the query pages.
        while st.runs.len() > self.cfg.query_pages() as usize {
            match st.runs.plan_merge(&self.cfg) {
                Some(plan) => self.merge_runs_locked(&session, &mut st, plan)?,
                None => break,
            }
        }

        let mem_snapshot = st.buffer.snapshot_range(begin, end, query_ts);
        let runs: Vec<Arc<SortedRun>> = st.runs.runs().to_vec();
        let pinned = runs.len() as u64;
        st.active_queries.insert(query_ts, pinned);
        st.pinned_pages += pinned;
        drop(st);

        let mut streams: Vec<UpdateStream> = Vec::with_capacity(runs.len() + 2);
        for run in &runs {
            if run.max_key < begin || run.min_key > end {
                continue;
            }
            streams.push(Box::new(
                RunScan::with_cache(
                    self.ssd.clone(),
                    session.clone(),
                    Arc::clone(run),
                    Some(Arc::clone(&self.cache)),
                    begin,
                    end,
                )
                .with_fetch_histogram(Arc::clone(&self.metrics.block_fetch)),
            ));
        }
        streams.push(Box::new(mem_snapshot.into_iter()));
        if !private.is_empty() {
            private.sort_by_key(|a| (a.key, a.ts));
            private.retain(|u| u.key >= begin && u.key <= end);
            streams.push(Box::new(private.into_iter()));
        }

        let data = self.heap.scan_range(session.clone(), begin, end).with_ts();
        let updates = MergeUpdates::new(streams, self.schema.clone(), query_ts);
        let join = MergeDataUpdates::new(data, updates, self.schema.clone());
        Ok(MergeScan {
            inner: join,
            engine: Arc::clone(self),
            session,
            ts: query_ts,
            pinned,
            cpu_per_record: 0,
            closed: false,
        })
    }

    /// Point lookup: the freshest visible version of `key`.
    ///
    /// Consults, in order, the in-memory update buffer, the
    /// materialized runs — per-run bloom filters reject runs that
    /// definitely lack the key with zero I/O, and needed blocks come
    /// through the shared [`BlockCache`] — and finally the heap page
    /// that would hold the key. All updates visible at the lookup's
    /// timestamp are applied to the heap base record (page timestamps
    /// skip updates a migration already folded in), so the result is
    /// exactly what a [`MasmEngine::begin_scan`] of `[key, key]` would
    /// return, at a fraction of the setup cost.
    pub fn get(self: &Arc<Self>, session: &SessionHandle, key: Key) -> MasmResult<Option<Record>> {
        let _t = Timer::start(&self.metrics.get, || session.now());
        let ts = self.oracle.next();
        // Register as an active query so a concurrent migration cannot
        // retire the runs (and recycle their SSD space) mid-lookup.
        let (runs, mem) = {
            let mut st = self.state.lock();
            st.active_queries.insert(ts, 0);
            (
                st.runs.runs().to_vec(),
                st.buffer.snapshot_range(key, key, ts),
            )
        };
        let result = (|| {
            let mut updates: Vec<UpdateRecord> = Vec::new();
            for run in &runs {
                updates.extend(
                    lookup_in_run(session, &self.ssd, run, Some(&self.cache), key)?
                        .into_iter()
                        .filter(|u| u.ts <= ts),
                );
            }
            updates.extend(mem);
            updates.sort_by_key(|u| u.ts);

            let (base, page_ts) = match self.heap.locate(key) {
                Some(logical) => {
                    let page = self.heap.read_page(session, logical)?;
                    let rec = page.records().find(|r| r.key == key);
                    (rec, page.timestamp())
                }
                None => (None, 0),
            };
            let mut current = base;
            for u in updates {
                if u.ts > page_ts {
                    current = u.apply_to(current, &self.schema);
                }
            }
            Ok(current)
        })();
        self.finish_scan(ts, 0);
        result
    }

    fn finish_scan(&self, ts: Timestamp, pinned: u64) {
        let mut st = self.state.lock();
        st.active_queries.remove(&ts);
        st.pinned_pages -= pinned.min(st.pinned_pages);
        if st.active_queries.is_empty() && st.retired_bytes > 0 {
            st.retired_bytes = 0;
            // Recompute allocator state from the live runs: retired run
            // space becomes reusable only now that no scan can touch it.
            let (mut high, mut live) = (0u64, 0u64);
            for r in st.runs.runs() {
                high = high.max(r.base + r.bytes);
                live += r.bytes;
            }
            st.runs
                .set_space(SsdSpace::with_state(self.cfg.ssd_region_base, high, live));
        }
        drop(st);
        self.quiesce.notify_all();
    }

    /// Migrate all currently materialized runs back into the main data,
    /// in place (§3.2 "In-Place Migration"). Blocks until queries older
    /// than the migration timestamp finish; queries arriving afterwards
    /// run concurrently and stay correct via page timestamps.
    pub fn migrate(self: &Arc<Self>, session: &SessionHandle) -> MasmResult<MigrationReport> {
        let (mig_ts, runs) = {
            let mut st = self.state.lock();
            if st.migrating {
                return Ok(MigrationReport::default());
            }
            // Flush the in-memory buffer so every update earlier than the
            // migration timestamp lives in a run: migrated pages carry
            // `mig_ts`, which must truthfully mean "all updates with
            // ts ≤ mig_ts are in this page".
            self.flush_locked(session, &mut st, true)?;
            if st.runs.is_empty() {
                return Ok(MigrationReport::default());
            }
            let mig_ts = self.oracle.next();
            let runs: Vec<Arc<SortedRun>> = st.runs.runs().to_vec();
            st.migrating = true;
            self.wal.lock().append(
                session,
                &WalRecord::MigrationBegin {
                    ts: mig_ts,
                    run_ids: runs.iter().map(|r| r.id).collect(),
                },
            )?;
            (mig_ts, runs)
        };
        // Past the early returns: this is a real migration, time it
        // end-to-end (quiesce wait + merge + run retirement).
        let _t = Timer::start(&self.metrics.migrate, || session.now());

        // Wait for queries earlier than t (§3.2).
        {
            let mut st = self.state.lock();
            while st.active_queries.keys().next().is_some_and(|&t| t < mig_ts) {
                self.quiesce.wait(&mut st);
            }
        }

        let report = self.drive_migration(session, mig_ts, &runs)?;

        // Delete the migrated runs. Wait until no query still holds
        // their Run_scans before releasing the SSD space for reuse.
        {
            let mut st = self.state.lock();
            while !st.active_queries.is_empty() {
                self.quiesce.wait(&mut st);
            }
            let ids: Vec<u64> = runs.iter().map(|r| r.id).collect();
            let mut wal = self.wal.lock();
            wal.append(session, &WalRecord::RunsDeleted(ids.clone()))?;
            wal.append(session, &WalRecord::MigrationEnd { ts: mig_ts })?;
            drop(wal);
            self.account_runs_removed(&st, &ids);
            st.runs.remove_ids(&ids);
            st.migrating = false;
        }
        Ok(report)
    }

    /// Partial (per-range) migration — §3.5 "Improving Migration":
    /// apply only the cached updates whose keys fall in `[begin, end]`
    /// to the overlapping data pages, distributing migration cost across
    /// several smaller operations. Runs are **not** deleted (they still
    /// hold updates outside the range); a later full [`MasmEngine::migrate`]
    /// retires them. Page timestamps keep double-application impossible,
    /// so partial and full migrations compose freely.
    pub fn migrate_range(
        self: &Arc<Self>,
        session: &SessionHandle,
        begin: Key,
        end: Key,
    ) -> MasmResult<MigrationReport> {
        let (mig_ts, runs) = {
            let mut st = self.state.lock();
            if st.migrating || st.runs.is_empty() {
                return Ok(MigrationReport::default());
            }
            self.flush_locked(session, &mut st, true)?;
            if st.runs.is_empty() {
                return Ok(MigrationReport::default());
            }
            let mig_ts = self.oracle.next();
            st.migrating = true;
            (mig_ts, st.runs.runs().to_vec())
        };
        let _t = Timer::start(&self.metrics.migrate, || session.now());
        // Queries older than the migration timestamp must not observe
        // pages stamped with it (§3.2).
        {
            let mut st = self.state.lock();
            while st.active_queries.keys().next().is_some_and(|&t| t < mig_ts) {
                self.quiesce.wait(&mut st);
            }
        }

        // Fan-in-driven prefetch: each of the k run scans keeps k reads
        // in flight so the device queue stays full (§3.7 at scale).
        let overlapping: Vec<&Arc<SortedRun>> = runs
            .iter()
            .filter(|r| r.max_key >= begin && r.min_key <= end)
            .collect();
        let depth = self.cfg.merge_prefetch_depth(overlapping.len());
        let streams: Vec<UpdateStream> = overlapping
            .into_iter()
            .map(|r| {
                Box::new(
                    RunScan::new(self.ssd.clone(), session.clone(), Arc::clone(r), begin, end)
                        .with_prefetch_depth(depth),
                ) as UpdateStream
            })
            .collect();
        let updates = MergeUpdates::new(streams, self.schema.clone(), mig_ts).peekable();
        let mut rewriter = self.heap.rewriter_range(session.clone(), begin, end);
        let report =
            self.rewrite_with_updates(session, mig_ts, updates, &mut rewriter, runs.len())?;
        rewriter.finish();

        self.state.lock().migrating = false;
        self.quiesce.notify_all();
        Ok(report)
    }

    /// The migration inner loop: chunked merge of the heap with the
    /// sorted runs, writing pages stamped with the migration timestamp.
    fn drive_migration(
        &self,
        session: &SessionHandle,
        mig_ts: Timestamp,
        runs: &[Arc<SortedRun>],
    ) -> MasmResult<MigrationReport> {
        // Migration reads bypass the block cache: the runs are retired as
        // soon as the migration completes, so inserting their blocks
        // would evict hot query blocks for entries that can never be hit
        // again (run ids are not reused). Prefetch depth follows the
        // migration fan-in so all k run scans keep the SSD queue full
        // while the merged stream drains into the heap rewrite.
        let depth = self.cfg.merge_prefetch_depth(runs.len());
        let streams: Vec<UpdateStream> = runs
            .iter()
            .map(|r| {
                Box::new(
                    RunScan::new(
                        self.ssd.clone(),
                        session.clone(),
                        Arc::clone(r),
                        0,
                        Key::MAX,
                    )
                    .with_prefetch_depth(depth),
                ) as UpdateStream
            })
            .collect();
        let mut updates = MergeUpdates::new(streams, self.schema.clone(), mig_ts).peekable();
        let mut applied = 0u64;

        if self.heap.num_pages() == 0 {
            // Empty table: materialize all insert/replace updates as a
            // fresh bulk load.
            let records: Vec<Record> = std::iter::from_fn(|| updates.next())
                .filter_map(|u| {
                    applied += 1;
                    u.apply_to(None, &self.schema)
                })
                .collect();
            if !records.is_empty() {
                self.heap.bulk_load(session, records, 1.0)?;
                let (page_map, min_keys, record_count) = self.heap.metadata_snapshot();
                self.wal.lock().append(
                    session,
                    &WalRecord::HeapLoaded {
                        base: page_map.first().copied().unwrap_or(0),
                        page_size: self.heap.config().page_size as u32,
                        min_keys,
                        record_count,
                    },
                )?;
            }
            return Ok(MigrationReport {
                ts: mig_ts,
                runs_migrated: runs.len(),
                updates_applied: applied,
                pages_written: self.heap.num_pages() as u64,
            });
        }

        let mut rewriter = self.heap.rewriter(session.clone());
        let mut report =
            self.rewrite_with_updates(session, mig_ts, updates, &mut rewriter, runs.len())?;
        rewriter.finish();
        report.updates_applied += applied;
        Ok(report)
    }

    /// Shared chunk-merge loop of full and partial migration: pull
    /// chunks from `rewriter`, outer-join them with `updates`, and
    /// commit pages stamped with the migration timestamp.
    fn rewrite_with_updates(
        &self,
        session: &SessionHandle,
        mig_ts: Timestamp,
        mut updates: std::iter::Peekable<MergeUpdates>,
        rewriter: &mut masm_pagestore::HeapRewriter<'_>,
        runs_count: usize,
    ) -> MasmResult<MigrationReport> {
        let mut applied = 0u64;
        let mut pages_written = 0u64;
        let page_size = self.heap.config().page_size;
        while let Some(old_pages) = rewriter.next_chunk()? {
            let at_end = rewriter.at_end();
            let chunk_max = old_pages
                .iter()
                .filter_map(|p| p.max_key())
                .max()
                .unwrap_or(Key::MAX);

            let mut out: Vec<Record> = Vec::new();
            for page in &old_pages {
                let page_ts = page.timestamp();
                for record in page.records() {
                    // Emit updates for keys before this record.
                    while updates.peek().is_some_and(|u| u.key < record.key) {
                        let u = updates.next().expect("peeked");
                        applied += 1;
                        if let Some(r) = u.apply_to(None, &self.schema) {
                            out.push(r);
                        }
                    }
                    if updates.peek().is_some_and(|u| u.key == record.key) {
                        let u = updates.next().expect("peeked");
                        applied += 1;
                        let base = Some(record);
                        let merged = if u.ts > page_ts {
                            u.apply_to(base, &self.schema)
                        } else {
                            base
                        };
                        if let Some(r) = merged {
                            out.push(r);
                        }
                    } else {
                        out.push(record);
                    }
                }
            }
            // Absorb gap/trailing inserts belonging to this chunk.
            while updates.peek().is_some_and(|u| at_end || u.key <= chunk_max) {
                let u = updates.next().expect("peeked");
                applied += 1;
                if let Some(r) = u.apply_to(None, &self.schema) {
                    out.push(r);
                }
            }
            out.sort_by_key(|r| r.key);

            let mut new_pages: Vec<Page> = Vec::with_capacity(old_pages.len());
            let mut cur = Page::new(page_size);
            cur.set_timestamp(mig_ts);
            for r in &out {
                if !cur.fits(r) {
                    new_pages.push(std::mem::replace(&mut cur, Page::new(page_size)));
                    cur.set_timestamp(mig_ts);
                }
                assert!(cur.append(r), "record exceeds page size");
            }
            if cur.record_count() > 0 {
                new_pages.push(cur);
            }
            pages_written += new_pages.len() as u64;
            let commit = rewriter.commit_chunk(new_pages)?;
            self.wal
                .lock()
                .append(session, &WalRecord::MapSplice(commit))?;
        }

        Ok(MigrationReport {
            ts: mig_ts,
            runs_migrated: runs_count,
            updates_applied: applied,
            pages_written,
        })
    }

    /// Rebuild an engine after a crash: heap metadata, run set, and the
    /// in-memory update buffer come back from the redo log and the
    /// (durable) SSD; an interrupted migration is re-driven to
    /// completion (idempotent thanks to page timestamps).
    pub fn recover(
        heap: Arc<TableHeap>,
        ssd: SimDevice,
        wal_dev: SimDevice,
        schema: Schema,
        cfg: MasmConfig,
    ) -> MasmResult<(Arc<Self>, RecoveryReport)> {
        cfg.validate()?;
        let session = SessionHandle::fresh(ssd.clock().clone());
        let (records, wal_end) = Wal::read_all(&session, &wal_dev)?;

        struct RunInfo {
            base: u64,
            passes: u8,
        }
        let mut live_runs: BTreeMap<u64, RunInfo> = BTreeMap::new();
        let mut run_bytes: BTreeMap<u64, u64> = BTreeMap::new();
        let mut pending: Vec<UpdateRecord> = Vec::new();
        let mut max_ts: Timestamp = 0;
        let mut unfinished_migration = false;
        let mut heap_loaded = false;

        for rec in &records {
            match rec {
                WalRecord::Update(u) => {
                    max_ts = max_ts.max(u.ts);
                    pending.push(u.clone());
                }
                WalRecord::RunCreated {
                    id,
                    base,
                    bytes,
                    passes,
                    ..
                } => {
                    live_runs.insert(
                        *id,
                        RunInfo {
                            base: *base,
                            passes: *passes,
                        },
                    );
                    run_bytes.insert(*id, *bytes);
                    if *passes == 1 {
                        pending.clear();
                    }
                }
                WalRecord::RunsDeleted(ids) => {
                    for id in ids {
                        live_runs.remove(id);
                        run_bytes.remove(id);
                    }
                }
                WalRecord::MigrationBegin { ts, .. } => {
                    max_ts = max_ts.max(*ts);
                    unfinished_migration = true;
                }
                WalRecord::MigrationEnd { .. } => {
                    unfinished_migration = false;
                }
                WalRecord::HeapLoaded {
                    base,
                    page_size,
                    min_keys,
                    record_count,
                } => {
                    let page_map: Vec<u64> = (0..min_keys.len() as u64)
                        .map(|i| base + i * *page_size as u64)
                        .collect();
                    let alloc_next = base + min_keys.len() as u64 * *page_size as u64;
                    heap.restore(page_map, min_keys.clone(), *record_count, alloc_next);
                    heap_loaded = true;
                }
                WalRecord::MapSplice(commit) => {
                    heap.apply_splice(commit);
                }
            }
        }
        if !records.is_empty() && !heap_loaded && heap.num_pages() == 0 && !live_runs.is_empty() {
            // Runs exist but the heap was never loaded: legal (updates
            // into an empty table); nothing to restore.
        }

        // Re-open run metadata from the durable, checksummed block-run
        // footers: zone maps, bloom filters, and key/timestamp bounds
        // come back without decoding a single update record (the old
        // format re-read and re-decoded every run byte here).
        let mut runs = RunSet::new();
        let mut high_water = 0u64;
        let mut live_bytes = 0u64;
        let mut max_run_id = 0u64;
        let mut rebuilt: Vec<Arc<SortedRun>> = Vec::new();
        for (id, info) in &live_runs {
            let bytes = run_bytes[id];
            let run = recover_run(&session, &ssd, *id, info.base, bytes, info.passes)?;
            max_ts = max_ts.max(run.max_ts);
            high_water = high_water.max(info.base + bytes);
            live_bytes += bytes;
            max_run_id = max_run_id.max(*id);
            rebuilt.push(Arc::new(run));
        }
        runs.set_space(SsdSpace::with_state(
            cfg.ssd_region_base,
            high_water,
            live_bytes,
        ));
        for r in rebuilt {
            runs.add(r);
        }
        runs.resume_ids_after(max_run_id);
        let runs_recovered = runs.len();

        let mut buffer = UpdateBuffer::new(cfg.update_buffer_bytes() as usize);
        let updates_recovered = pending.len() as u64;
        for u in pending {
            buffer.push(u);
        }

        // Re-pin the recovered runs' metadata footprint in the cache
        // accounting (zone maps + blooms live as long as the runs do),
        // and rebuild the codec accounting from their zone maps.
        let cache = Arc::new(BlockCache::with_config(cfg.cache_config()));
        let mut compression = CompressionReport::default();
        for r in runs.runs() {
            cache.retain_meta_bytes(r.memory_bytes());
            compression.absorb(&r.meta.compression());
        }

        let engine = Arc::new(MasmEngine {
            heap,
            ssd,
            cache,
            cfg,
            schema,
            oracle: TimestampOracle::resume_after(max_ts),
            state: Mutex::new(EngineState {
                buffer,
                runs,
                active_queries: BTreeMap::new(),
                pinned_pages: 0,
                retired_bytes: 0,
                migrating: false,
            }),
            quiesce: Condvar::new(),
            wal: Mutex::new(Wal::new(wal_dev, wal_end)),
            ingested_updates: AtomicU64::new(0),
            ingested_bytes: AtomicU64::new(0),
            commit_index: Mutex::new(std::collections::HashMap::new()),
            last_merge: Mutex::new(None),
            merge_totals: Mutex::new(MergeReport::default()),
            compression_totals: Mutex::new(compression),
            metrics: EngineMetrics::new(),
        });

        let mut report = RecoveryReport {
            updates_recovered,
            runs_recovered,
            redid_migration: false,
        };
        if unfinished_migration {
            engine.migrate(&session)?;
            report.redid_migration = true;
        }
        Ok((engine, report))
    }
}

/// A merged range scan: the operator tree of Figure 6 rooted at
/// `Merge_data_updates`, plus the bookkeeping that lets migration wait
/// for earlier queries.
pub struct MergeScan {
    inner: MergeDataUpdates<TsRangeScan, MergeUpdates>,
    engine: Arc<MasmEngine>,
    session: SessionHandle,
    ts: Timestamp,
    pinned: u64,
    cpu_per_record: u64,
    closed: bool,
}

impl MergeScan {
    /// This query's timestamp.
    pub fn timestamp(&self) -> Timestamp {
        self.ts
    }

    /// Inject CPU cost per returned record (Figure 13's experiment).
    pub fn with_cpu_per_record(mut self, ns: u64) -> Self {
        self.cpu_per_record = ns;
        self
    }
}

impl Iterator for MergeScan {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        let start = self.session.now();
        let r = self.inner.next();
        if r.is_some() {
            if self.cpu_per_record > 0 {
                self.session.cpu(self.cpu_per_record);
            }
            // Record only yielded records, so the histogram's count
            // equals the number of records scans returned.
            self.engine
                .metrics
                .scan_next
                .record(self.session.now().saturating_sub(start));
        }
        r
    }
}

impl Drop for MergeScan {
    fn drop(&mut self) {
        if !self.closed {
            self.closed = true;
            self.engine.finish_scan(self.ts, self.pinned);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masm_pagestore::HeapConfig;
    use masm_storage::{DeviceProfile, SimClock};

    fn schema() -> Schema {
        Schema::synthetic_100b()
    }

    fn payload(measure: u32) -> Vec<u8> {
        let s = schema();
        let mut p = s.empty_payload();
        s.set_u32(&mut p, 0, measure);
        p
    }

    struct Fixture {
        engine: Arc<MasmEngine>,
        session: SessionHandle,
        #[allow(dead_code)]
        clock: SimClock,
    }

    fn fixture(n_records: u64) -> Fixture {
        let clock = SimClock::new();
        let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let wal_dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
        let engine =
            MasmEngine::new(heap, ssd, wal_dev, schema(), MasmConfig::small_for_tests()).unwrap();
        let session = SessionHandle::fresh(clock.clone());
        if n_records > 0 {
            engine
                .load_table(
                    &session,
                    (0..n_records).map(|i| Record::new(i * 2, payload(i as u32))),
                    1.0,
                )
                .unwrap();
        }
        Fixture {
            engine,
            session,
            clock,
        }
    }

    fn scan_keys(f: &Fixture, begin: Key, end: Key) -> Vec<Key> {
        f.engine
            .begin_scan(f.session.clone(), begin, end)
            .unwrap()
            .map(|r| r.key)
            .collect()
    }

    #[test]
    fn scan_without_updates_matches_heap() {
        let f = fixture(1000);
        let keys = scan_keys(&f, 0, u64::MAX);
        assert_eq!(keys.len(), 1000);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn freshly_applied_updates_visible_to_scans() {
        let f = fixture(100);
        // Insert an odd key, delete an even key, modify another.
        f.engine
            .apply_update(&f.session, 41, UpdateOp::Insert(payload(999)))
            .unwrap();
        f.engine
            .apply_update(&f.session, 10, UpdateOp::Delete)
            .unwrap();
        f.engine
            .apply_update(
                &f.session,
                20,
                UpdateOp::Modify(vec![crate::update::FieldPatch {
                    field: 0,
                    value: 777u32.to_le_bytes().to_vec(),
                }]),
            )
            .unwrap();
        let recs: Vec<Record> = f
            .engine
            .begin_scan(f.session.clone(), 0, 60)
            .unwrap()
            .collect();
        let keys: Vec<Key> = recs.iter().map(|r| r.key).collect();
        assert!(keys.contains(&41), "insert visible");
        assert!(!keys.contains(&10), "delete visible");
        let r20 = recs.iter().find(|r| r.key == 20).unwrap();
        assert_eq!(schema().get_u32(&r20.payload, 0), 777, "modify visible");
    }

    #[test]
    fn updates_after_query_start_invisible() {
        let f = fixture(100);
        let scan = f.engine.begin_scan(f.session.clone(), 0, u64::MAX).unwrap();
        // This update commits after the scan's timestamp.
        f.engine
            .apply_update(&f.session, 31, UpdateOp::Insert(payload(1)))
            .unwrap();
        let keys: Vec<Key> = scan.map(|r| r.key).collect();
        assert!(!keys.contains(&31));
        // A later scan sees it.
        assert!(scan_keys(&f, 0, u64::MAX).contains(&31));
    }

    #[test]
    fn buffer_flushes_to_runs_and_stays_visible() {
        let f = fixture(1000);
        // Push enough updates to force several flushes.
        for i in 0..3000u64 {
            f.engine
                .apply_update(&f.session, i * 2 + 1, UpdateOp::Insert(payload(i as u32)))
                .unwrap();
        }
        assert!(f.engine.run_count() > 0, "runs materialized");
        let keys = scan_keys(&f, 0, 1000);
        // All odd and even keys up to 1000.
        assert_eq!(keys.len(), 1001);
        assert!(keys.windows(2).all(|w| w[0] + 1 == w[1]));
    }

    #[test]
    fn no_random_ssd_writes_design_goal_2() {
        let f = fixture(100);
        f.engine.ssd().reset_stats();
        for i in 0..5000u64 {
            f.engine
                .apply_update(&f.session, i * 2 + 1, UpdateOp::Insert(payload(1)))
                .unwrap();
        }
        // Flushes, and possibly 2-pass merges, happened.
        let stats = f.engine.ssd().stats();
        assert!(stats.write_ops > 0);
        // Run allocations are contiguous; at most one "random" write per
        // run start (no predecessor continuation).
        assert!(
            stats.random_writes as usize <= f.engine.run_count() + 64,
            "{stats:?}"
        );
    }

    #[test]
    fn migration_applies_everything_and_clears_runs() {
        let f = fixture(500);
        for i in 0..1500u64 {
            f.engine
                .apply_update(&f.session, i * 2 + 1, UpdateOp::Insert(payload(7)))
                .unwrap();
        }
        f.engine
            .apply_update(&f.session, 100, UpdateOp::Delete)
            .unwrap();
        let before = scan_keys(&f, 0, u64::MAX);
        let report = f.engine.migrate(&f.session).unwrap();
        assert!(report.runs_migrated > 0);
        assert_eq!(f.engine.run_count(), 0, "runs deleted after migration");
        let after = scan_keys(&f, 0, u64::MAX);
        // Buffered (unflushed) updates still overlay correctly.
        assert_eq!(before, after, "migration must not change query results");
        assert!(!after.contains(&100));
    }

    #[test]
    fn scan_during_migration_window_is_correct() {
        // A scan opened *after* migration's timestamp sees a mix of
        // migrated pages and still-live runs; page timestamps prevent
        // double-application.
        let f = fixture(300);
        for i in 0..900u64 {
            f.engine
                .apply_update(&f.session, i * 2 + 1, UpdateOp::Insert(payload(3)))
                .unwrap();
        }
        let expect = scan_keys(&f, 0, u64::MAX);
        f.engine.migrate(&f.session).unwrap();
        let got = scan_keys(&f, 0, u64::MAX);
        assert_eq!(expect, got);
        // Apply the same logical updates again: idempotence of replace.
        for i in 0..900u64 {
            f.engine
                .apply_update(&f.session, i * 2 + 1, UpdateOp::Replace(payload(3)))
                .unwrap();
        }
        let again = scan_keys(&f, 0, u64::MAX);
        assert_eq!(expect, again);
    }

    #[test]
    fn small_range_scans_after_many_updates() {
        let f = fixture(5000);
        for i in 0..4000u64 {
            f.engine
                .apply_update(
                    &f.session,
                    ((i * 37) % 10000) | 1,
                    UpdateOp::Insert(payload(i as u32)),
                )
                .unwrap();
        }
        let keys = scan_keys(&f, 5000, 5100);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert!(keys.iter().all(|&k| (5000..=5100).contains(&k)));
        // All even keys in range must be present.
        for k in (5000..=5100).step_by(2) {
            assert!(keys.contains(&k), "missing base key {k}");
        }
    }

    #[test]
    fn crash_recovery_restores_buffer_and_runs() {
        let clock = SimClock::new();
        let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let wal_dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let heap = Arc::new(TableHeap::new(disk.clone(), HeapConfig::default()));
        let session = SessionHandle::fresh(clock.clone());
        let engine = MasmEngine::new(
            heap,
            ssd.clone(),
            wal_dev.clone(),
            schema(),
            MasmConfig::small_for_tests(),
        )
        .unwrap();
        engine
            .load_table(
                &session,
                (0..500u64).map(|i| Record::new(i * 2, payload(i as u32))),
                1.0,
            )
            .unwrap();
        for i in 0..1200u64 {
            engine
                .apply_update(&session, i * 2 + 1, UpdateOp::Insert(payload(5)))
                .unwrap();
        }
        let expect = engine
            .begin_scan(session.clone(), 0, u64::MAX)
            .unwrap()
            .map(|r| r.key)
            .collect::<Vec<_>>();
        let buffered = engine.buffered_updates();
        let runs = engine.run_count();
        assert!(buffered > 0 && runs > 0, "need both tiers for the test");

        // "Crash": drop the engine; devices survive. Rebuild a fresh heap
        // handle over the same disk device (metadata comes from the WAL).
        drop(engine);
        let heap2 = Arc::new(TableHeap::new(disk, HeapConfig::default()));
        let (engine2, report) =
            MasmEngine::recover(heap2, ssd, wal_dev, schema(), MasmConfig::small_for_tests())
                .unwrap();
        assert_eq!(report.updates_recovered as usize, buffered);
        assert_eq!(report.runs_recovered, runs);
        assert!(!report.redid_migration);
        let got: Vec<Key> = engine2
            .begin_scan(session, 0, u64::MAX)
            .unwrap()
            .map(|r| r.key)
            .collect();
        assert_eq!(expect, got, "post-recovery scans see all updates");
    }

    #[test]
    fn crash_during_migration_is_redone() {
        let clock = SimClock::new();
        let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let wal_dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let heap = Arc::new(TableHeap::new(disk.clone(), HeapConfig::default()));
        let session = SessionHandle::fresh(clock.clone());
        let engine = MasmEngine::new(
            heap,
            ssd.clone(),
            wal_dev.clone(),
            schema(),
            MasmConfig::small_for_tests(),
        )
        .unwrap();
        engine
            .load_table(
                &session,
                (0..400u64).map(|i| Record::new(i * 2, payload(i as u32))),
                1.0,
            )
            .unwrap();
        for i in 0..900u64 {
            engine
                .apply_update(&session, i * 2 + 1, UpdateOp::Insert(payload(9)))
                .unwrap();
        }
        let expect: Vec<Key> = engine
            .begin_scan(session.clone(), 0, u64::MAX)
            .unwrap()
            .map(|r| r.key)
            .collect();
        // Simulate a crash mid-migration: log MigrationBegin but stop.
        {
            let st = engine.state.lock();
            let ids: Vec<u64> = st.runs.runs().iter().map(|r| r.id).collect();
            engine
                .wal
                .lock()
                .append(
                    &session,
                    &WalRecord::MigrationBegin {
                        ts: engine.oracle.next(),
                        run_ids: ids,
                    },
                )
                .unwrap();
        }
        drop(engine);
        let heap2 = Arc::new(TableHeap::new(disk, HeapConfig::default()));
        let (engine2, report) =
            MasmEngine::recover(heap2, ssd, wal_dev, schema(), MasmConfig::small_for_tests())
                .unwrap();
        assert!(report.redid_migration);
        assert_eq!(
            engine2.run_count(),
            0,
            "migration completed during recovery"
        );
        let got: Vec<Key> = engine2
            .begin_scan(session, 0, u64::MAX)
            .unwrap()
            .map(|r| r.key)
            .collect();
        assert_eq!(expect, got);
    }

    #[test]
    fn run_count_stays_within_query_page_budget_at_scan_setup() {
        let f = fixture(200);
        let budget = f.engine.config().query_pages() as usize;
        for i in 0..40_000u64 {
            f.engine
                .apply_update(&f.session, (i % 399) | 1, UpdateOp::Replace(payload(1)))
                .unwrap();
        }
        // Trigger scan setup (merges runs down to the budget).
        let _ = scan_keys(&f, 0, 10);
        assert!(
            f.engine.run_count() <= budget,
            "runs {} > budget {budget}",
            f.engine.run_count()
        );
    }

    #[test]
    fn migration_of_empty_engine_is_noop() {
        let f = fixture(50);
        let report = f.engine.migrate(&f.session).unwrap();
        assert_eq!(report, MigrationReport::default());
    }

    #[test]
    fn partial_migration_preserves_results_and_composes() {
        let f = fixture(600);
        for i in 0..1_200u64 {
            f.engine
                .apply_update(&f.session, i * 2 + 1, UpdateOp::Insert(payload(4)))
                .unwrap();
        }
        f.engine
            .apply_update(&f.session, 100, UpdateOp::Delete)
            .unwrap();
        let expect = scan_keys(&f, 0, u64::MAX);

        // Migrate only the first quarter of the key space.
        let r1 = f.engine.migrate_range(&f.session, 0, 300).unwrap();
        assert!(r1.updates_applied > 0);
        assert!(f.engine.run_count() > 0, "partial migration keeps runs");
        assert_eq!(expect, scan_keys(&f, 0, u64::MAX), "after first quarter");

        // Another partial slice, overlapping the first (idempotence via
        // page timestamps).
        f.engine.migrate_range(&f.session, 200, 700).unwrap();
        assert_eq!(expect, scan_keys(&f, 0, u64::MAX), "after overlap");

        // Full migration retires the runs and still agrees.
        f.engine.migrate(&f.session).unwrap();
        assert_eq!(f.engine.run_count(), 0);
        assert_eq!(expect, scan_keys(&f, 0, u64::MAX), "after full");
        assert!(!expect.contains(&100));
    }

    #[test]
    fn partial_migration_is_cheaper_than_full() {
        // The table must span several rewrite chunks for the comparison
        // to be about data volume rather than fixed costs.
        let n = 120_000u64;
        let run = |partial: bool| {
            let f = fixture(n);
            for i in 0..3_000u64 {
                f.engine
                    .apply_update(
                        &f.session,
                        ((i * 79) % (2 * n)) | 1,
                        UpdateOp::Insert(payload(1)),
                    )
                    .unwrap();
            }
            let start = f.session.now();
            if partial {
                f.engine.migrate_range(&f.session, 0, n / 5).unwrap();
            } else {
                f.engine.migrate(&f.session).unwrap();
            }
            f.session.now() - start
        };
        let partial_ns = run(true);
        let full_ns = run(false);
        assert!(
            partial_ns * 3 < full_ns,
            "10% range should cost far less: partial={partial_ns} full={full_ns}"
        );
    }

    #[test]
    fn compact_runs_collapses_duplicates() {
        let f = fixture(200);
        // Hammer a handful of keys so folding has teeth.
        for i in 0..6_000u64 {
            f.engine
                .apply_update(
                    &f.session,
                    (i % 10) * 2,
                    UpdateOp::Replace(payload(i as u32)),
                )
                .unwrap();
        }
        let runs_before = f.engine.run_count();
        assert!(runs_before >= 2, "need several runs");
        let bytes_before = f.engine.cached_bytes();
        let expect = scan_keys(&f, 0, u64::MAX);

        let report = f.engine.compact_runs(&f.session).unwrap();
        assert_eq!(report.inputs, runs_before);
        assert!(
            report.blocks_merged > 0,
            "hammered keys overlap across runs: {report:?}"
        );
        assert_eq!(f.engine.run_count(), 1, "single run remains");
        assert_eq!(f.engine.last_merge_report(), Some(report));
        assert!(
            f.engine.cached_bytes() < bytes_before / 4,
            "duplicates folded: {} -> {}",
            bytes_before,
            f.engine.cached_bytes()
        );
        assert_eq!(expect, scan_keys(&f, 0, u64::MAX));
        // The surviving values are the latest ones.
        let rec = f
            .engine
            .begin_scan(f.session.clone(), 0, 0)
            .unwrap()
            .next()
            .unwrap();
        assert_eq!(schema().get_u32(&rec.payload, 0), 5990);
    }

    #[test]
    fn compact_runs_on_few_runs_is_noop() {
        let f = fixture(50);
        assert_eq!(
            f.engine.compact_runs(&f.session).unwrap(),
            masm_storage::MergeReport::default()
        );
    }

    #[test]
    fn disjoint_compaction_decodes_nothing_and_writes_sequentially() {
        let f = fixture(100);
        // Four key-disjoint bands, each cut into its own run(s): the
        // merge plan must move every block verbatim.
        for band in 0..4u64 {
            for i in 0..400u64 {
                f.engine
                    .apply_update(
                        &f.session,
                        band * 100_000 + i * 2 + 1,
                        UpdateOp::Insert(payload(band as u32)),
                    )
                    .unwrap();
            }
            f.engine.flush_buffer(&f.session).unwrap();
        }
        let runs_before = f.engine.run_count();
        assert!(runs_before >= 4, "need several runs, got {runs_before}");
        let expect = scan_keys(&f, 0, u64::MAX);

        let before = f.engine.ssd().stats();
        let report = f.engine.compact_runs(&f.session).unwrap();
        let delta = f.engine.ssd().stats().delta(&before);

        assert_eq!(report.inputs, runs_before);
        assert_eq!(report.bytes_decoded, 0, "zero-decode: {report:?}");
        assert_eq!(report.blocks_merged, 0);
        assert!(report.blocks_moved > 0);
        assert_eq!(delta.random_writes, 0, "{delta:?}");
        assert_eq!(f.engine.run_count(), 1);
        assert_eq!(expect, scan_keys(&f, 0, u64::MAX), "results unchanged");

        // Metadata accounting follows the run set: one run's footprint
        // remains, and a full migration releases it.
        let st = f.engine.cache_stats();
        assert!(st.meta_bytes > 0, "{st:?}");
        f.engine.migrate(&f.session).unwrap();
        assert_eq!(f.engine.cache_stats().meta_bytes, 0);
        assert_eq!(expect, scan_keys(&f, 0, u64::MAX), "after migration");
    }

    #[test]
    fn overlapping_compaction_decodes_only_the_overlap() {
        let f = fixture(100);
        // Two runs sharing one key band plus disjoint tails.
        for i in 0..400u64 {
            f.engine
                .apply_update(&f.session, i * 2 + 1, UpdateOp::Insert(payload(1)))
                .unwrap();
        }
        f.engine.flush_buffer(&f.session).unwrap();
        for i in 300..700u64 {
            f.engine
                .apply_update(&f.session, i * 2 + 1, UpdateOp::Replace(payload(2)))
                .unwrap();
        }
        f.engine.flush_buffer(&f.session).unwrap();
        let expect = scan_keys(&f, 0, u64::MAX);

        let report = f.engine.compact_runs(&f.session).unwrap();
        assert!(report.blocks_merged > 0, "{report:?}");
        assert!(report.blocks_moved > 0, "disjoint tails move: {report:?}");
        // Only ~a quarter of the entries sit in the shared band, so the
        // decoded portion must stay well below the moved portion.
        assert!(
            report.bytes_decoded < report.bytes_moved,
            "only the overlap decodes: {report:?}"
        );
        assert_eq!(expect, scan_keys(&f, 0, u64::MAX));
        // The overlap band carries the later run's values.
        let rec = f
            .engine
            .begin_scan(f.session.clone(), 601, 601)
            .unwrap()
            .next()
            .unwrap();
        assert_eq!(schema().get_u32(&rec.payload, 0), 2);
    }

    #[test]
    fn get_consults_buffer_runs_bloom_and_heap() {
        let f = fixture(100); // even keys 0..200 hold payload(key/2)

        // Heap fallback: no cached updates at all.
        let rec = f.engine.get(&f.session, 40).unwrap().expect("heap hit");
        assert_eq!(schema().get_u32(&rec.payload, 0), 20);

        // Hit in a materialized run.
        f.engine
            .apply_update(&f.session, 43, UpdateOp::Insert(payload(900)))
            .unwrap();
        f.engine
            .apply_update(&f.session, 20, UpdateOp::Delete)
            .unwrap();
        f.engine.flush_buffer(&f.session).unwrap();
        assert!(f.engine.run_count() > 0 && f.engine.buffered_updates() == 0);
        let rec = f.engine.get(&f.session, 43).unwrap().expect("run hit");
        assert_eq!(schema().get_u32(&rec.payload, 0), 900);
        assert!(f.engine.get(&f.session, 20).unwrap().is_none(), "deleted");

        // Hit in the in-memory buffer (overrides the run's version).
        f.engine
            .apply_update(&f.session, 43, UpdateOp::Replace(payload(901)))
            .unwrap();
        assert!(f.engine.buffered_updates() > 0);
        let rec = f.engine.get(&f.session, 43).unwrap().expect("buffer hit");
        assert_eq!(schema().get_u32(&rec.payload, 0), 901);

        // Bloom negative: a key in no run costs zero SSD reads.
        let ssd_reads = f.engine.ssd().stats().read_ops;
        let miss = f.engine.get(&f.session, 45).unwrap();
        assert!(miss.is_none());
        assert_eq!(
            f.engine.ssd().stats().read_ops,
            ssd_reads,
            "bloom rejected the run without I/O"
        );

        // Agreement with the merged scan operator across all cases.
        for key in [20u64, 40, 43, 45, 44] {
            let via_scan: Vec<Record> = f
                .engine
                .begin_scan(f.session.clone(), key, key)
                .unwrap()
                .collect();
            let via_get = f.engine.get(&f.session, key).unwrap();
            assert_eq!(via_scan.first(), via_get.as_ref(), "key {key}");
        }
    }
}
