//! The MaSM engine: the storage-manager-level facade of §3.
//!
//! One engine manages one table: its clustered heap on the disk device,
//! its SSD update cache (in-memory buffer + materialized sorted runs),
//! its redo log, and the timestamp oracle that serializes individual
//! queries and updates. It exposes exactly the surface the paper argues
//! a DBMS needs ("MaSM can be implemented in the storage manager … it
//! does not require modification to the buffer manager, query processor
//! or query optimizer"):
//!
//! * [`MasmEngine::apply_update`] — ingest a well-formed update,
//! * [`MasmEngine::begin_scan`] — a table range scan that transparently
//!   merges cached updates (drop-in for `Table_range_scan`),
//! * [`MasmEngine::migrate`] — in-place migration of cached updates,
//! * [`MasmEngine::recover`] — crash recovery from the redo log.
//!
//! # Concurrency architecture
//!
//! The engine state lock is a [`TrackedMutex`] and is **never** held
//! across device I/O (the storage layer debug-asserts this). Every
//! operation follows the same phased-locking shape:
//!
//! 1. a short critical section deciding what to do and snapshotting
//!    immutable `Arc`s (runs, sealed batches, a buffer snapshot),
//! 2. all I/O outside the lock against those snapshots,
//! 3. a short *handoff* critical section publishing the result and
//!    bumping the engine epoch.
//!
//! Queries therefore read a consistent snapshot and never block on a
//! flush, merge, or migration. Retired run space is recycled only once
//! the engine quiesces (no active queries, no sealed batches, no merge
//! or migration in flight), so a pinned snapshot can keep reading a
//! retired run's blocks safely — the bump allocator never hands its
//! extent out again before the rewind.
//!
//! With `background_workers > 0` a `worker::WorkerPool`
//! executes flushes, compactions, and migrations off the ingest/scan
//! path: ingest *seals* a full buffer into an immutable batch (visible
//! to queries) and enqueues a flush job; it only ever throttles via the
//! bounded-backlog backpressure gate. With `background_workers == 0`
//! (the default) everything runs inline and single-threaded benches
//! stay deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Condvar, Mutex};

use masm_blockrun::BlockCache;
use masm_pagestore::{ChunkCommit, Key, Page, Record, Schema, TableHeap, TsRangeScan};
use masm_storage::{
    CacheStatsSnapshot, CompressionReport, IoSession, MergeReport, Ns, SessionHandle, SimDevice,
    TrackedMutex,
};
use masm_telemetry::{
    current_tid, BufferStats, Counter, EngineStats, Gauge, Histogram, OpLatencies, Registry,
    RunSetStats, Timer, Tracer, TrackId, Unit, WorkerStats,
};

use crate::algo::RunSet;
use crate::config::MasmConfig;
use crate::error::{MasmError, MasmResult};
use crate::manifest::ShardManifest;
use crate::membuf::UpdateBuffer;
use crate::merge::{
    compact_block_runs, fold_duplicates, MergeDataUpdates, MergeUpdates, UpdateStream,
};
use crate::run::{
    build_run, lookup_in_run, recover_run, write_built, RunScan, SortedRun, SsdSpace,
};
use crate::ts::{Timestamp, TimestampOracle};
use crate::update::{UpdateOp, UpdateRecord};
use crate::wal::{Wal, WalRecord};
use crate::worker::{Job, JobKind, WorkerHandle, WorkerPool, MAX_JOB_ATTEMPTS};

/// The engine's metric families: a [`Registry`] for export plus direct
/// `Arc<Histogram>` handles for the hot paths (registry lookup never
/// happens per operation). All six histograms record **virtual-ns**.
struct EngineMetrics {
    registry: Registry,
    ingest: Arc<Histogram>,
    get: Arc<Histogram>,
    scan_next: Arc<Histogram>,
    flush: Arc<Histogram>,
    migrate: Arc<Histogram>,
    block_fetch: Arc<Histogram>,
    /// Epochs the oldest pinned query snapshot trails the engine's
    /// current epoch (0 when no query is active).
    epoch_lag: Arc<Gauge>,
    merge_inputs: Arc<Counter>,
    merge_blocks_moved: Arc<Counter>,
    merge_blocks_merged: Arc<Counter>,
    merge_bytes_decoded: Arc<Counter>,
    recovery: RecoveryCounters,
}

/// Crash-recovery counters (family `recovery`). Registered on every
/// engine so `render_openmetrics` always exports the family; non-zero
/// only on engines built by [`MasmEngine::recover`].
struct RecoveryCounters {
    records_replayed: Arc<Counter>,
    updates_rebuilt: Arc<Counter>,
    runs_recovered: Arc<Counter>,
    torn_tail: Arc<Counter>,
    torn_bytes: Arc<Counter>,
    migrations_redriven: Arc<Counter>,
}

impl EngineMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        let h = |name, help| registry.histogram("op", name, Unit::VirtualNs, help);
        let c = |name, unit, help| registry.counter("merge", name, unit, help);
        EngineMetrics {
            ingest: h(
                "ingest",
                "one apply_update call, including any flush it triggered",
            ),
            get: h("get", "one point lookup"),
            scan_next: h("scan_next", "one record yielded by a merged range scan"),
            flush: h("flush", "one buffer flush materializing a 1-pass run"),
            migrate: h("migrate", "one full or partial migration"),
            block_fetch: h("block_fetch", "one block obtained by a query run scan"),
            epoch_lag: registry.gauge(
                "engine",
                "epoch_lag",
                Unit::Ops,
                "epochs the oldest pinned query snapshot trails the engine",
            ),
            merge_inputs: c("inputs", Unit::Ops, "runs consumed by planned merges"),
            merge_blocks_moved: c("blocks_moved", Unit::Ops, "blocks relinked verbatim"),
            merge_blocks_merged: c("blocks_merged", Unit::Ops, "blocks decoded and re-encoded"),
            merge_bytes_decoded: c("bytes_decoded", Unit::Bytes, "bytes decoded by merges"),
            recovery: {
                let r = |name, unit, help| registry.counter("recovery", name, unit, help);
                RecoveryCounters {
                    records_replayed: r(
                        "records_replayed",
                        Unit::Ops,
                        "WAL records replayed at recovery",
                    ),
                    updates_rebuilt: r(
                        "updates_rebuilt",
                        Unit::Ops,
                        "updates restored into the in-memory buffer",
                    ),
                    runs_recovered: r(
                        "runs_recovered",
                        Unit::Ops,
                        "materialized runs re-registered at recovery",
                    ),
                    torn_tail: r("torn_tail", Unit::Ops, "torn WAL tails truncated"),
                    torn_bytes: r(
                        "torn_bytes",
                        Unit::Bytes,
                        "WAL bytes discarded with torn tails",
                    ),
                    migrations_redriven: r(
                        "migrations_redriven",
                        Unit::Ops,
                        "interrupted migrations re-driven to completion",
                    ),
                }
            },
            registry,
        }
    }

    fn snapshot(&self) -> OpLatencies {
        OpLatencies {
            ingest: self.ingest.snapshot(),
            get: self.get.snapshot(),
            scan_next: self.scan_next.snapshot(),
            flush: self.flush.snapshot(),
            migrate: self.migrate.snapshot(),
            block_fetch: self.block_fetch.snapshot(),
        }
    }
}

/// Bookkeeping for one active query (scan or point lookup).
#[derive(Debug, Clone, Copy)]
struct QueryPin {
    /// Query pages pinned (one per open run scan).
    pages: u64,
    /// The engine epoch the query's snapshot was taken at.
    epoch: u64,
}

/// A full in-memory buffer, sealed into an immutable batch awaiting its
/// background flush. Sealed batches stay visible to queries (scans and
/// gets read them alongside runs and the live buffer) and are removed
/// only when their 1-pass run is published.
struct SealedBatch {
    id: u64,
    /// Largest update timestamp in the batch — logged with the run so
    /// recovery can tell buffer-resident updates from flushed ones.
    max_ts: Timestamp,
    /// Logical bytes, for backlog accounting.
    bytes: u64,
    /// A worker (or inline caller) is currently flushing this batch.
    claimed: bool,
    /// Whether `bytes` was charged to the worker backlog gate.
    enqueued: bool,
    /// Sorted, deduplicated updates; shared with query snapshots.
    updates: Arc<Vec<UpdateRecord>>,
}

struct EngineState {
    buffer: UpdateBuffer,
    runs: RunSet,
    /// Sealed batches awaiting background flush, oldest first.
    sealed: Vec<SealedBatch>,
    next_batch: u64,
    /// Active query timestamps → pin bookkeeping.
    active_queries: BTreeMap<Timestamp, QueryPin>,
    /// Total pinned query pages across active scans.
    pinned_pages: u64,
    /// SSD bytes of runs deleted while queries were still active; freed
    /// once the system quiesces.
    retired_bytes: u64,
    /// A planned 2-pass merge is in flight.
    merging: bool,
    migrating: bool,
    /// Scans whose query timestamp is drawn (or about to be drawn) but
    /// not yet registered in `active_queries`. A cross-shard scan draws
    /// one timestamp and then pins each shard in turn; between the draw
    /// and this shard's pin, the timestamp is invisible to the
    /// active-query guards, so duplicate folding and the migration gate
    /// must treat any pending reservation as "a query at an unknown
    /// timestamp may still arrive" and stay conservative.
    scan_reservations: u64,
}

/// Outcome of one migration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Migration timestamp `t`.
    pub ts: Timestamp,
    /// Number of runs migrated.
    pub runs_migrated: usize,
    /// Update records merged into the main data.
    pub updates_applied: u64,
    /// Data pages written back.
    pub pages_written: u64,
}

/// Outcome of crash recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Updates restored into the in-memory buffer.
    pub updates_recovered: u64,
    /// Materialized runs re-registered.
    pub runs_recovered: usize,
    /// Whether an interrupted migration was re-driven to completion.
    pub redid_migration: bool,
    /// WAL records replayed from the longest valid log prefix.
    pub wal_records_replayed: u64,
    /// Bytes truncated from a torn WAL tail (0 = the log ended
    /// cleanly).
    pub wal_torn_bytes: u64,
}

/// One heap-metadata event parsed from a redo log. Sharded recovery
/// merges the events of every shard's log into one globally ordered
/// sequence (by `seq`, with cross-log duplicates removed) before
/// touching the shared heap.
#[derive(Debug, Clone)]
pub(crate) enum HeapEvent {
    /// A bulk load ([`WalRecord::HeapLoaded`]).
    Load {
        /// Global heap-event sequence number.
        seq: u64,
        /// Physical base offset of the load.
        base: u64,
        /// Page size used.
        page_size: u32,
        /// Minimum key per page.
        min_keys: Vec<Key>,
        /// Total records loaded.
        record_count: u64,
    },
    /// A migration chunk splice ([`WalRecord::MapSplice`]).
    Splice {
        /// Global heap-event sequence number.
        seq: u64,
        /// The logged splice.
        commit: ChunkCommit,
    },
}

impl HeapEvent {
    pub(crate) fn seq(&self) -> u64 {
        match self {
            HeapEvent::Load { seq, .. } | HeapEvent::Splice { seq, .. } => *seq,
        }
    }
}

/// Replay the heap-metadata events of one or more redo logs against a
/// (fresh) table heap, in global `seq` order. Duplicates — the same
/// bulk load broadcast to several shard WALs — collapse by `seq`.
pub(crate) fn apply_heap_events(heap: &TableHeap, mut events: Vec<HeapEvent>) {
    events.sort_by_key(HeapEvent::seq);
    events.dedup_by_key(|e| e.seq());
    for ev in events {
        match ev {
            HeapEvent::Load {
                base,
                page_size,
                min_keys,
                record_count,
                ..
            } => {
                let page_map: Vec<u64> = (0..min_keys.len() as u64)
                    .map(|i| base + i * page_size as u64)
                    .collect();
                let alloc_next = base + min_keys.len() as u64 * page_size as u64;
                heap.restore(page_map, min_keys, record_count, alloc_next);
            }
            HeapEvent::Splice { commit, .. } => heap.apply_splice(&commit),
        }
    }
}

/// One materialized run named by the redo log as live at the crash.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RecoveredRun {
    base: u64,
    bytes: u64,
    passes: u8,
}

/// Everything crash recovery needs from one shard's redo log: the
/// record-level fold of the longest valid log prefix.
pub(crate) struct ParsedWal {
    /// The shard manifest, when the log belongs to a sharded
    /// deployment (absent on standalone engines).
    pub(crate) manifest: Option<ShardManifest>,
    /// Runs created and not yet deleted, by run id.
    pub(crate) live_runs: BTreeMap<u64, RecoveredRun>,
    /// Logged updates not yet absorbed by any 1-pass run — the
    /// in-memory buffer contents at the crash.
    pub(crate) pending: Vec<UpdateRecord>,
    /// Highest durable timestamp (updates, migration marks, and
    /// heap-event seqs all draw from the one oracle).
    pub(crate) max_ts: Timestamp,
    /// A `MigrationBegin` without its `MigrationEnd`.
    pub(crate) unfinished_migration: bool,
    /// Heap loads and splices, in log order.
    pub(crate) heap_events: Vec<HeapEvent>,
    /// Records in the valid prefix.
    pub(crate) records_replayed: u64,
    /// Byte offset where the valid prefix ends (the recovered append
    /// point).
    pub(crate) end_offset: u64,
    /// Bytes dropped beyond `end_offset` (torn tail; 0 = clean end).
    pub(crate) torn_bytes: u64,
}

/// The MaSM storage-manager engine for one table.
pub struct MasmEngine {
    heap: Arc<TableHeap>,
    ssd: SimDevice,
    cfg: MasmConfig,
    schema: Schema,
    /// Shared cache of decoded run blocks: every run scan of this
    /// engine — queries, merges, migrations — goes through it, so hot
    /// run pages are read off the SSD once.
    cache: Arc<BlockCache>,
    oracle: TimestampOracle,
    /// The engine state lock. [`TrackedMutex`]: holding it across
    /// device I/O is a debug-mode panic (lock-discipline audit).
    state: TrackedMutex<EngineState>,
    quiesce: Condvar,
    /// Redo log. Appends are internally synchronized (lock-free offset
    /// reservation) — no engine lock is involved in logging.
    wal: Wal,
    /// Monotonic snapshot-publication counter: bumped inside every
    /// handoff critical section that changes the visible run set.
    epoch: AtomicU64,
    /// Background worker pool, present when `background_workers > 0`.
    workers: OnceLock<WorkerHandle>,
    /// This engine's shard index in a sharded deployment (0 when the
    /// engine stands alone). Tags every job handed to the shared pool.
    shard_id: usize,
    ingested_updates: AtomicU64,
    ingested_bytes: AtomicU64,
    /// Last commit timestamp per key, for first-committer-wins snapshot
    /// isolation (§3.6). A production system would truncate this by the
    /// oldest active transaction; we keep it simple.
    commit_index: Mutex<std::collections::HashMap<Key, Timestamp>>,
    /// Outcome of the most recent planned run merge (2-pass merge or
    /// compaction).
    last_merge: Mutex<Option<MergeReport>>,
    /// Cumulative totals across every planned merge this engine ran.
    merge_totals: Mutex<MergeReport>,
    /// Cumulative codec accounting across every run this engine built
    /// (or recovered): raw vs stored data-block bytes, blocks per codec.
    compression_totals: Mutex<CompressionReport>,
    /// Per-operation latency histograms + the metric registry behind
    /// [`MasmEngine::stats`].
    metrics: EngineMetrics,
    /// Optional `masm-trace` flight recorder
    /// ([`MasmEngine::install_tracer`]). When absent or disabled every
    /// instrumentation site costs one load.
    tracer: OnceLock<Arc<Tracer>>,
    /// Flow id linking the most recently requested compact job to the
    /// flush/scan that scheduled it (0 = none pending). Consumed by
    /// [`MasmEngine::run_job`].
    compact_flow: AtomicU64,
    /// Flow id linking the most recently requested migrate job to its
    /// requester (0 = none pending).
    migrate_flow: AtomicU64,
}

impl std::fmt::Debug for MasmEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("MasmEngine")
            .field("buffered_updates", &st.buffer.len())
            .field("runs", &st.runs.len())
            .field("cached_bytes", &st.runs.live_bytes())
            .finish()
    }
}

impl MasmEngine {
    /// Create an engine over an existing (possibly empty) heap.
    pub fn new(
        heap: Arc<TableHeap>,
        ssd: SimDevice,
        wal_dev: SimDevice,
        schema: Schema,
        cfg: MasmConfig,
    ) -> MasmResult<Arc<Self>> {
        Self::build(
            heap,
            ssd,
            wal_dev,
            schema,
            cfg,
            TimestampOracle::new(),
            0,
            true,
        )
    }

    /// Shared constructor. A sharded deployment injects a *cloned*
    /// oracle (one global timestamp order across shards), the shard's
    /// index, and `spawn_workers = false` — the [`crate::ShardedEngine`]
    /// wires one shared pool across all shards afterwards via
    /// [`MasmEngine::install_workers`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build(
        heap: Arc<TableHeap>,
        ssd: SimDevice,
        wal_dev: SimDevice,
        schema: Schema,
        cfg: MasmConfig,
        oracle: TimestampOracle,
        shard_id: usize,
        spawn_workers: bool,
    ) -> MasmResult<Arc<Self>> {
        cfg.validate()?;
        let buffer = UpdateBuffer::new(cfg.update_buffer_bytes() as usize);
        let mut runs = RunSet::new();
        runs.set_space(SsdSpace::with_origin(cfg.ssd_region_base));
        // The engine only ever appends runs from its region base; prime
        // the head there so the very first run write on a *fresh* device
        // is classified sequential (design goal 2: random_writes == 0).
        // On a shared device that already has a head position this is a
        // no-op — another engine's accounting must not be rewritten.
        ssd.prime_head_position_if_unset(cfg.ssd_region_base);
        let cache = Arc::new(BlockCache::with_config(cfg.cache_config()));
        let engine = Arc::new(MasmEngine {
            heap,
            ssd,
            cfg,
            schema,
            cache,
            oracle,
            state: TrackedMutex::new(EngineState {
                buffer,
                runs,
                sealed: Vec::new(),
                next_batch: 0,
                active_queries: BTreeMap::new(),
                pinned_pages: 0,
                retired_bytes: 0,
                merging: false,
                migrating: false,
                scan_reservations: 0,
            }),
            quiesce: Condvar::new(),
            wal: Wal::new(wal_dev, 0),
            epoch: AtomicU64::new(0),
            workers: OnceLock::new(),
            shard_id,
            ingested_updates: AtomicU64::new(0),
            ingested_bytes: AtomicU64::new(0),
            commit_index: Mutex::new(std::collections::HashMap::new()),
            last_merge: Mutex::new(None),
            merge_totals: Mutex::new(MergeReport::default()),
            compression_totals: Mutex::new(CompressionReport::default()),
            metrics: EngineMetrics::new(),
            tracer: OnceLock::new(),
            compact_flow: AtomicU64::new(0),
            migrate_flow: AtomicU64::new(0),
        });
        if spawn_workers {
            Self::start_workers(&engine);
        } else {
            engine.cache.bind_registry(&engine.metrics.registry);
        }
        Ok(engine)
    }

    /// Wire subsystem metrics into the engine registry and, when
    /// configured, spawn the background worker pool.
    fn start_workers(engine: &Arc<Self>) {
        engine.cache.bind_registry(&engine.metrics.registry);
        if engine.cfg.background_workers > 0 {
            let pool = WorkerPool::new(
                engine.cfg.background_workers,
                engine.cfg.effective_backlog_bytes(),
                1,
                &[&engine.metrics.registry],
            );
            let handle = WorkerHandle::spawn(std::slice::from_ref(engine), pool);
            let _ = engine.workers.set(handle);
        }
    }

    /// Install a shared worker handle built by a sharded deployment.
    /// No-op if workers were already installed.
    pub(crate) fn install_workers(&self, handle: WorkerHandle) {
        let _ = self.workers.set(handle);
    }

    /// This engine's metric registry (per-shard counters for a shared
    /// pool register here).
    pub(crate) fn registry(&self) -> &Registry {
        &self.metrics.registry
    }

    /// Install the `masm-trace` flight recorder. First installation
    /// wins; the engine emits spans, instants, and flow links only
    /// while a tracer is installed *and* enabled — otherwise every
    /// instrumentation site costs one relaxed load.
    pub fn install_tracer(&self, tracer: Arc<Tracer>) {
        let _ = self.tracer.set(tracer);
    }

    /// The installed tracer while recording is on. `None` is the fast
    /// path: one `OnceLock` load plus one relaxed atomic load.
    #[inline]
    fn trace(&self) -> Option<&Arc<Tracer>> {
        self.tracer.get().filter(|t| t.enabled())
    }

    /// The installed tracer regardless of the enabled flag (scan
    /// streams hold it for the lifetime of the query and re-check the
    /// flag per event).
    pub(crate) fn tracer_arc(&self) -> Option<Arc<Tracer>> {
        self.tracer.get().cloned()
    }

    /// This engine's trace track: pid = shard, tid = calling thread.
    fn track(&self) -> TrackId {
        TrackId {
            pid: self.shard_id as u32,
            tid: current_tid(),
        }
    }

    /// Deterministic flow id for sealed batch `batch_id`'s ingest →
    /// flush causal link. Shard-disambiguated and disjoint from
    /// [`Tracer::next_flow_id`]'s counter range, so the link can be
    /// emitted statelessly from both ends.
    fn flush_flow(&self, batch_id: u64) -> u64 {
        ((self.shard_id as u64 + 1) << 40) | batch_id
    }

    /// Drain and join the background workers (no-op in inline mode).
    /// Idempotent; queued jobs still execute before threads exit.
    /// Dropping the engine without calling this only *signals* shutdown
    /// — call it for deterministic teardown.
    pub fn shutdown(&self) {
        if let Some(h) = self.workers.get() {
            h.join();
        }
    }

    /// The worker handle while background mode is live. `None` once
    /// shutdown has been signalled: a job enqueued past shutdown would
    /// never run, so the engine reverts to the inline flush/merge paths
    /// (same semantics as `background_workers = 0`).
    fn live_pool(&self) -> Option<&WorkerHandle> {
        self.workers.get().filter(|h| !h.pool().is_shutdown())
    }

    /// Worker-side job dispatch (called from the pool's threads). The
    /// session starts at the job's *request* time, so background I/O
    /// overlaps the foreground actors in virtual time; the device
    /// busy-horizon serializes it against same-shard traffic.
    pub(crate) fn run_job(self: &Arc<Self>, pool: &WorkerPool, mut job: Job) {
        let session = SessionHandle::new(IoSession::at(self.ssd.clock().clone(), job.at));
        // Resolve the job's causal link before executing: the flush
        // flow id is deterministic from the batch, compact/migrate
        // flows were stashed by whoever scheduled the job. Consume the
        // stash unconditionally so a stale id never leaks into the
        // next job of the same kind.
        let (job_name, flow_name, flow) = match job.kind {
            JobKind::Flush { batch_id } => ("job.flush", "masm.flush", self.flush_flow(batch_id)),
            JobKind::Compact => (
                "job.compact",
                "masm.compact",
                self.compact_flow.swap(0, Ordering::Relaxed),
            ),
            JobKind::Migrate => (
                "job.migrate",
                "masm.migrate",
                self.migrate_flow.swap(0, Ordering::Relaxed),
            ),
        };
        let result = match job.kind {
            JobKind::Flush { batch_id } => self.flush_batch(&session, batch_id),
            JobKind::Compact => self.background_compact(&session),
            JobKind::Migrate => self.migrate(&session).map(|_| ()),
        };
        // The migrate staggering slot is held for the *execution* only —
        // release it before retry bookkeeping so a failed migration
        // cannot deadlock the pool against its own requeued job.
        if matches!(job.kind, JobKind::Migrate) {
            pool.migration_finished();
        }
        let counters = pool.counters(self.shard_id);
        let job_at = job.at;
        let mut attempts = job.attempts;
        match result {
            Ok(()) => {
                counters.jobs_completed.incr();
                self.maybe_schedule_maintenance(session.now());
            }
            Err(_) => {
                job.attempts += 1;
                attempts = job.attempts;
                if job.attempts < MAX_JOB_ATTEMPTS {
                    counters.jobs_retried.incr();
                    if let Some(t) = self.trace() {
                        t.instant(
                            "job.retry",
                            self.track(),
                            session.now(),
                            "attempts",
                            u64::from(job.attempts),
                        );
                    }
                    pool.requeue(job);
                } else {
                    counters.jobs_failed.incr();
                    if let Some(t) = self.trace() {
                        t.instant(
                            "job.abandon",
                            self.track(),
                            session.now(),
                            "attempts",
                            u64::from(job.attempts),
                        );
                    }
                    if let JobKind::Flush { batch_id } = job.kind {
                        self.abandon_batch(batch_id);
                    }
                }
            }
        }
        // Emit the job span last so every event this job produced —
        // the flow finish, retries, and any compact/migrate flow starts
        // scheduled by `maybe_schedule_maintenance` — falls inside it.
        if let Some(t) = self.trace() {
            let track = self.track();
            if flow != 0 {
                t.flow_finish(flow_name, track, job_at, flow);
            }
            t.span_event(
                job_name,
                track,
                job_at,
                session.now().saturating_sub(job_at),
                "attempts",
                u64::from(attempts),
            );
        }
    }

    /// Enqueue compaction / migration jobs if the run set warrants them
    /// (checked after every completed job and every published flush).
    /// `at` is the requesting actor's virtual time.
    fn maybe_schedule_maintenance(&self, at: Ns) {
        let Some(h) = self.workers.get() else { return };
        let (compact, migrate) = {
            let st = self.state.lock();
            (
                !st.merging && st.runs.plan_merge(&self.cfg).is_some(),
                !st.migrating && st.runs.needs_migration(&self.cfg),
            )
        };
        if compact {
            if let Some(t) = self.trace() {
                let flow = t.next_flow_id();
                self.compact_flow.store(flow, Ordering::Relaxed);
                t.flow_start("masm.compact", self.track(), at, flow);
            }
            h.pool().enqueue_compact(self.shard_id, at);
        }
        if migrate {
            if let Some(t) = self.trace() {
                let flow = t.next_flow_id();
                self.migrate_flow.store(flow, Ordering::Relaxed);
                t.flow_start("masm.migrate", self.track(), at, flow);
            }
            h.pool().enqueue_migrate(self.shard_id, at);
        }
    }

    /// A flush exhausted its retries: move the sealed batch's updates
    /// back into the in-memory buffer (the WAL already holds them all)
    /// so nothing is lost and queries keep seeing the data.
    fn abandon_batch(&self, batch_id: u64) {
        let released = {
            let mut st = self.state.lock();
            let Some(pos) = st.sealed.iter().position(|b| b.id == batch_id) else {
                return;
            };
            let batch = st.sealed.remove(pos);
            for u in batch.updates.iter() {
                st.buffer.push(u.clone());
            }
            batch.enqueued.then_some(batch.bytes)
        };
        if let (Some(bytes), Some(h)) = (released, self.workers.get()) {
            h.pool().release_backlog(bytes);
        }
        self.quiesce.notify_all();
    }

    /// Bulk-load the table (records sorted by key) and log the load so
    /// the heap metadata is recoverable.
    pub fn load_table(
        &self,
        session: &SessionHandle,
        records: impl IntoIterator<Item = Record>,
        fill: f64,
    ) -> MasmResult<()> {
        self.heap.bulk_load(session, records, fill)?;
        self.log_heap_loaded(session, self.oracle.next())
    }

    /// Log the heap's current (bulk-loaded) metadata under heap-event
    /// sequence `seq`. A sharded deployment broadcasts one load to
    /// every shard's WAL under a single shared `seq`, so multi-log
    /// replay applies it exactly once.
    pub(crate) fn log_heap_loaded(&self, session: &SessionHandle, seq: u64) -> MasmResult<()> {
        let (page_map, min_keys, record_count) = self.heap.metadata_snapshot();
        let base = page_map.first().copied().unwrap_or(0);
        self.wal.append(
            session,
            &WalRecord::HeapLoaded {
                seq,
                base,
                page_size: self.heap.config().page_size as u32,
                min_keys,
                record_count,
            },
        )
    }

    /// Append the shard manifest to this shard's redo log (the first
    /// record of every WAL in a sharded deployment).
    pub(crate) fn log_manifest(
        &self,
        session: &SessionHandle,
        manifest: &ShardManifest,
    ) -> MasmResult<()> {
        self.wal
            .append(session, &WalRecord::Manifest(manifest.clone()))
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The engine configuration.
    pub fn config(&self) -> &MasmConfig {
        &self.cfg
    }

    /// The table heap.
    pub fn heap(&self) -> &Arc<TableHeap> {
        &self.heap
    }

    /// The SSD update-cache device (for statistics).
    pub fn ssd(&self) -> &SimDevice {
        &self.ssd
    }

    /// The shared block cache of decoded run blocks.
    pub fn block_cache(&self) -> &Arc<BlockCache> {
        &self.cache
    }

    /// Hit/miss counters of the block cache, including the split
    /// between evictable data-block bytes and pinned run-metadata bytes
    /// (zone maps + bloom filters).
    pub fn cache_stats(&self) -> CacheStatsSnapshot {
        self.cache.stats()
    }

    /// Outcome of the most recent planned run merge (2-pass merge or
    /// compaction), if any has run.
    pub fn last_merge_report(&self) -> Option<MergeReport> {
        *self.last_merge.lock()
    }

    /// Cumulative merge totals across the engine's lifetime.
    pub fn merge_stats(&self) -> MergeReport {
        *self.merge_totals.lock()
    }

    /// Cumulative codec accounting over every run this engine built or
    /// recovered: raw vs stored data-block bytes and per-codec block
    /// counts ([`CompressionReport::ratio`] is the on-disk compression
    /// ratio the configured [`crate::config::CodecChoice`] achieved).
    pub fn compression_stats(&self) -> CompressionReport {
        *self.compression_totals.lock()
    }

    fn record_merge(&self, report: MergeReport) {
        *self.last_merge.lock() = Some(report);
        self.merge_totals.lock().absorb(&report);
        self.metrics.merge_inputs.add(report.inputs as u64);
        self.metrics.merge_blocks_moved.add(report.blocks_moved);
        self.metrics.merge_blocks_merged.add(report.blocks_merged);
        self.metrics.merge_bytes_decoded.add(report.bytes_decoded);
    }

    /// Fold a newly built (or recovered) run's codec accounting into
    /// the engine totals.
    fn record_compression(&self, run: &SortedRun) {
        self.compression_totals
            .lock()
            .absorb(&run.meta.compression());
    }

    /// Pin a run's metadata footprint (zone maps + bloom) in the cache
    /// accounting.
    fn account_run_added(&self, run: &SortedRun) {
        self.cache.retain_meta_bytes(run.memory_bytes());
    }

    /// Release the metadata footprint of runs about to be removed; must
    /// run **before** `remove_ids` while the runs are still registered.
    fn account_runs_removed(&self, st: &EngineState, ids: &[u64]) {
        let bytes: usize = st
            .runs
            .runs()
            .iter()
            .filter(|r| ids.contains(&r.id))
            .map(|r| r.memory_bytes())
            .sum();
        self.cache.release_meta_bytes(bytes);
    }

    /// The timestamp oracle.
    pub fn oracle(&self) -> &TimestampOracle {
        &self.oracle
    }

    /// Bytes of cached updates on the SSD (live runs).
    pub fn cached_bytes(&self) -> u64 {
        self.state.lock().runs.live_bytes()
    }

    /// Number of live materialized runs.
    pub fn run_count(&self) -> usize {
        self.state.lock().runs.len()
    }

    /// Number of updates waiting in the in-memory buffer.
    pub fn buffered_updates(&self) -> usize {
        self.state.lock().buffer.len()
    }

    /// Whether cached updates have reached the migration threshold.
    pub fn needs_migration(&self) -> bool {
        let st = self.state.lock();
        st.runs.needs_migration(&self.cfg)
    }

    /// Total updates ingested and their logical bytes (for
    /// write-amplification accounting).
    pub fn ingest_stats(&self) -> (u64, u64) {
        (
            self.ingested_updates.load(Ordering::Relaxed),
            self.ingested_bytes.load(Ordering::Relaxed),
        )
    }

    /// The unified engine snapshot: cache, merge, compression, device
    /// I/O + wear summary, buffer and run-set occupancy, and the six
    /// per-operation latency histograms — everything the paper's
    /// quantitative invariants need, in one [`EngineStats`] value
    /// (serializable via [`EngineStats::to_json`], differentiable via
    /// [`EngineStats::delta`]).
    ///
    /// Cheap enough to poll from a driver loop: two short mutex holds
    /// (engine state, WAL) plus atomic loads; the SSD wear summary is
    /// O(1) — no per-block map is walked.
    pub fn stats(&self) -> EngineStats {
        let (buffer, runs, epoch_lag) = {
            let st = self.state.lock();
            let epoch = self.epoch.load(Ordering::Acquire);
            let lag = st
                .active_queries
                .values()
                .map(|p| p.epoch)
                .min()
                .map_or(0, |oldest| epoch.saturating_sub(oldest));
            (
                BufferStats {
                    updates: st.buffer.len() as u64,
                    bytes: st.buffer.bytes() as u64,
                    capacity_bytes: st.buffer.capacity() as u64,
                },
                RunSetStats {
                    count: st.runs.len() as u64,
                    cached_bytes: st.runs.live_bytes(),
                    ssd_capacity_bytes: self.cfg.ssd_capacity,
                },
                lag,
            )
        };
        self.metrics.epoch_lag.set(epoch_lag);
        let workers = match self.workers.get() {
            Some(h) => {
                let (queue_depth, backlog_bytes) = h.pool().depths();
                let counters = h.pool().counters(self.shard_id);
                WorkerStats {
                    threads: h.pool().threads as u64,
                    queue_depth,
                    backlog_bytes,
                    jobs_completed: counters.jobs_completed.get(),
                    jobs_retried: counters.jobs_retried.get(),
                    jobs_failed: counters.jobs_failed.get(),
                    flushes: counters.flushes.get(),
                    merges: counters.merges.get(),
                    migrations: counters.migrations.get(),
                    epoch_lag,
                }
            }
            None => WorkerStats {
                epoch_lag,
                ..WorkerStats::default()
            },
        };
        let wal = self.wal.device().stats();
        EngineStats {
            at_ns: self.ssd.clock().now(),
            ingested_updates: self.ingested_updates.load(Ordering::Relaxed),
            ingested_bytes: self.ingested_bytes.load(Ordering::Relaxed),
            buffer,
            runs,
            cache: self.cache.stats(),
            merge: *self.merge_totals.lock(),
            compression: *self.compression_totals.lock(),
            ssd: self.ssd.stats(),
            ssd_wear: self.ssd.wear_stats(),
            wal,
            workers,
            ops: self.metrics.snapshot(),
        }
    }

    /// The engine's metric registry (six `op.*` latency families), for
    /// catalog-style export: walk it with [`Registry::for_each`].
    pub fn metrics_registry(&self) -> &Registry {
        &self.metrics.registry
    }

    /// Atomically commit a transaction's private writes under
    /// first-committer-wins snapshot isolation (§3.6): if any written key
    /// was committed by another transaction after `start_ts`, the commit
    /// aborts with [`MasmError::Conflict`]. On success all writes carry
    /// one fresh commit timestamp.
    pub fn commit_writes(
        self: &Arc<Self>,
        session: &SessionHandle,
        start_ts: Timestamp,
        writes: Vec<(Key, UpdateOp)>,
    ) -> MasmResult<Timestamp> {
        let mut idx = self.commit_index.lock();
        for (key, _) in &writes {
            if idx.get(key).is_some_and(|&t| t > start_ts) {
                return Err(MasmError::Conflict { key: *key });
            }
        }
        let ts = self.oracle.next();
        for (key, _) in &writes {
            idx.insert(*key, ts);
        }
        drop(idx);
        for (key, op) in writes {
            self.apply_update_with_ts(session, UpdateRecord::new(ts, key, op))?;
        }
        Ok(ts)
    }

    /// Apply one well-formed update; returns its commit timestamp.
    pub fn apply_update(
        self: &Arc<Self>,
        session: &SessionHandle,
        key: Key,
        op: UpdateOp,
    ) -> MasmResult<Timestamp> {
        self.ingest(session, Err((key, op)))
    }

    /// Apply an update that already carries its commit timestamp
    /// (transaction commit path).
    pub fn apply_update_with_ts(
        self: &Arc<Self>,
        session: &SessionHandle,
        update: UpdateRecord,
    ) -> MasmResult<()> {
        self.ingest(session, Ok(update)).map(|_| ())
    }

    /// The shared ingest path. `pre` is either a pre-timestamped update
    /// (transaction commit, which assigned its timestamp under the
    /// commit index — a small pre-existing window where a concurrent
    /// seal may race the push) or the raw (key, op), whose timestamp is
    /// drawn *inside* the state lock so it can never land in a batch
    /// already sealed with a smaller `max_ts`.
    fn ingest(
        self: &Arc<Self>,
        session: &SessionHandle,
        pre: Result<UpdateRecord, (Key, UpdateOp)>,
    ) -> MasmResult<Timestamp> {
        let _t = Timer::start(&self.metrics.ingest, || session.now());
        // Sampled hot-path span (1-in-2^shift); `None` costs one
        // relaxed load + one relaxed fetch-add.
        let _sp = self
            .trace()
            .and_then(|t| t.op_span("ingest", self.track(), || session.now()));
        let background = self.live_pool().is_some();
        let (update, seal) = {
            let mut st = self.state.lock();
            let mut seal = None;
            if st.buffer.is_full() {
                // MaSM-M (Fig. 8): steal an unused query page if one
                // exists, otherwise seal the buffer for flushing.
                let page = self.cfg.ssd_page_size;
                let stolen = (st.buffer.capacity() - st.buffer.base_capacity()) / page;
                let in_use = st.pinned_pages + stolen as u64;
                if self.cfg.alpha < 2.0 && in_use < self.cfg.query_pages() {
                    st.buffer.steal_page(page);
                } else if st.runs.live_bytes() + st.buffer.bytes() as u64 > self.cfg.ssd_capacity {
                    return Err(MasmError::CacheFull {
                        cached: st.runs.live_bytes(),
                        capacity: self.cfg.ssd_capacity,
                    });
                } else {
                    seal = Some(self.seal_batch_locked(&mut st, background));
                }
            }
            let update = match pre {
                Ok(u) => u,
                Err((key, op)) => UpdateRecord::new(self.oracle.next(), key, op),
            };
            st.buffer.push(update.clone());
            (update, seal)
        };
        let ts = update.ts;
        self.ingested_updates.fetch_add(1, Ordering::Relaxed);
        self.ingested_bytes
            .fetch_add(update.encoded_len() as u64, Ordering::Relaxed);
        // The WAL write happens outside the state lock; appenders
        // reserve disjoint offsets, so ordering across threads is
        // whatever the offsets say — recovery filters buffer-resident
        // updates by timestamp (`RunCreated.max_ts`), not log position.
        self.wal.append(session, &WalRecord::Update(update))?;
        if let Some((batch_id, bytes)) = seal {
            if background {
                let pool = self.workers.get().expect("background mode").pool();
                let t0 = session.now();
                if let Some(t) = self.trace() {
                    let track = self.track();
                    t.instant("batch.seal", track, t0, "bytes", bytes);
                    // The causal origin of the flush job: Perfetto draws
                    // ingest.enqueue → job.flush across threads.
                    t.flow_start("masm.flush", track, t0, self.flush_flow(batch_id));
                    t.span_event("ingest.enqueue", track, t0, 100, "batch", batch_id);
                }
                pool.enqueue_flush(self.shard_id, batch_id, bytes, t0);
                // Backpressure: wait until the un-flushed backlog drops
                // under the limit, never doing the I/O ourselves. The
                // stall span runs on the *global* clock — this lane's
                // session cursor does not advance while it sleeps.
                let stall_start = self.ssd.clock().now();
                if pool.wait_for_space() {
                    if let Some(t) = self.trace() {
                        let end = self.ssd.clock().now();
                        t.span_event(
                            "backpressure.stall",
                            self.track(),
                            stall_start,
                            end.saturating_sub(stall_start).max(1),
                            "batch",
                            batch_id,
                        );
                    }
                }
            } else {
                // Inline mode: materialize the run now. On error the
                // updates are still durable (WAL) and visible (sealed
                // batch is readable until explicitly abandoned); we
                // return them to the buffer so the next flush retries.
                if let Err(e) = self.flush_batch(session, batch_id) {
                    self.abandon_batch(batch_id);
                    return Err(e);
                }
            }
        }
        Ok(ts)
    }

    /// Seal the in-memory buffer into an immutable sealed batch
    /// (sorted, optionally duplicate-folded) and return its id and
    /// logical byte size. Caller holds the state lock.
    fn seal_batch_locked(&self, st: &mut EngineState, charge_backlog: bool) -> (u64, u64) {
        let updates = st.buffer.drain_sorted();
        let max_ts = updates.iter().map(|u| u.ts).max().unwrap_or(0);
        let updates = if self.cfg.merge_duplicates {
            // A pending reservation is a query at an unknown timestamp:
            // fold nothing until it resolves into a registered pin.
            let reserved = st.scan_reservations > 0;
            let active: Vec<Timestamp> = st.active_queries.keys().copied().collect();
            fold_duplicates(updates, &self.schema, |t1, t2| {
                !reserved && !active.iter().any(|&t| t1 < t && t <= t2)
            })
        } else {
            updates
        };
        let bytes: u64 = updates.iter().map(|u| u.encoded_len() as u64).sum();
        let id = st.next_batch;
        st.next_batch += 1;
        st.sealed.push(SealedBatch {
            id,
            max_ts,
            bytes,
            claimed: false,
            enqueued: charge_backlog,
            updates: Arc::new(updates),
        });
        (id, bytes)
    }

    /// Materialize sealed batch `batch_id` as a 1-pass run: claim it,
    /// build and write the run outside the lock, publish in a handoff
    /// critical section. Missing or already-claimed batches are a no-op
    /// (a concurrent migration may have drained the queue).
    fn flush_batch(&self, session: &SessionHandle, batch_id: u64) -> MasmResult<()> {
        let (updates, max_ts, run_id) = {
            let mut st = self.state.lock();
            let Some(batch) = st.sealed.iter_mut().find(|b| b.id == batch_id) else {
                return Ok(());
            };
            if batch.claimed {
                return Ok(());
            }
            batch.claimed = true;
            let updates = Arc::clone(&batch.updates);
            let max_ts = batch.max_ts;
            let run_id = st.runs.next_id();
            (updates, max_ts, run_id)
        };
        let _t = Timer::start(&self.metrics.flush, || session.now());
        let mut _sp = self.trace().map(|t| {
            let s = session.clone();
            let mut g = t.span("flush", self.track(), move || s.now());
            g.set_arg("batch", batch_id);
            g
        });
        match self.flush_claimed(session, &updates, max_ts, run_id, batch_id) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Unclaim so a retry (or migration's drain) can take
                // over; wake any waiter blocked on this batch.
                let mut st = self.state.lock();
                if let Some(batch) = st.sealed.iter_mut().find(|b| b.id == batch_id) {
                    batch.claimed = false;
                }
                drop(st);
                self.quiesce.notify_all();
                Err(e)
            }
        }
    }

    fn flush_claimed(
        &self,
        session: &SessionHandle,
        updates: &[UpdateRecord],
        max_ts: Timestamp,
        run_id: u64,
        batch_id: u64,
    ) -> MasmResult<()> {
        // Build first: the block format's encoded size (compression,
        // zone maps, bloom, footer) is only known after building, and
        // the run's SSD extent must be allocated before it is written.
        let (mut run, encoded) = build_run(&self.cfg, run_id, 0, 1, updates);
        let base = self.state.lock().runs.alloc_space(run.bytes);
        run.rebase(base);
        // Runs append from their own allocator cursor; prime the head
        // there so interleaved WAL/heap traffic on a shared clock never
        // reclassifies this strictly sequential stream (goal 2).
        self.ssd.prime_head_position(base);
        let written = (|| {
            write_built(session, &self.ssd, &run, &encoded)?;
            self.wal.append(
                session,
                &WalRecord::RunCreated {
                    id: run_id,
                    base,
                    bytes: run.bytes,
                    count: run.count,
                    passes: 1,
                    max_ts,
                },
            )
        })();
        if let Err(e) = written {
            // The extent stays burned until the quiesce rewind; only
            // the live-byte accounting is released.
            self.state.lock().runs.free_space(run.bytes);
            return Err(e);
        }
        self.account_run_added(&run);
        self.record_compression(&run);
        // Handoff: publish the run and retire the sealed batch in one
        // critical section so queries always see exactly one of them.
        let released = {
            let mut st = self.state.lock();
            st.runs.add(Arc::new(run));
            self.epoch.fetch_add(1, Ordering::AcqRel);
            let pos = st
                .sealed
                .iter()
                .position(|b| b.id == batch_id)
                .expect("claimed batch still sealed");
            let batch = st.sealed.remove(pos);
            batch.enqueued.then_some(batch.bytes)
        };
        if let Some(h) = self.workers.get() {
            h.pool().counters(self.shard_id).flushes.incr();
            if let Some(bytes) = released {
                h.pool().release_backlog(bytes);
            }
        }
        self.quiesce.notify_all();
        Ok(())
    }

    /// Materialize any buffered updates as a 1-pass sorted run now,
    /// synchronously (even in background mode). Public so callers
    /// (benchmarks, tests, maintenance jobs) can cut a run at a
    /// workload boundary instead of waiting for the buffer to fill; a
    /// no-op on an empty buffer.
    pub fn flush_buffer(&self, session: &SessionHandle) -> MasmResult<()> {
        let batch_id = {
            let mut st = self.state.lock();
            if st.buffer.is_empty() {
                return Ok(());
            }
            if st.runs.live_bytes() + st.buffer.bytes() as u64 > self.cfg.ssd_capacity {
                return Err(MasmError::CacheFull {
                    cached: st.runs.live_bytes(),
                    capacity: self.cfg.ssd_capacity,
                });
            }
            self.seal_batch_locked(&mut st, false).0
        };
        self.flush_batch(session, batch_id)
    }

    /// §3.5 "Handling Skews": when duplicates abound, collapse every
    /// live run into one. Duplicate updates in *overlapping* key ranges
    /// fold (subject to the active-query guard); blocks that overlap no
    /// other run move verbatim without being decoded, so any duplicates
    /// *within* such a block survive until a later overlap or migration
    /// retires them — the zero-decode trade. (Flush-time folding
    /// already collapses most intra-run duplicates before they reach a
    /// run.) Returns the [`MergeReport`] of the planned merge —
    /// `report.inputs` is the number of runs compacted (0 when fewer
    /// than two runs were live). Fully disjoint inputs compact with
    /// `bytes_decoded == 0`: every block moves verbatim.
    pub fn compact_runs(&self, session: &SessionHandle) -> MasmResult<MergeReport> {
        let plan: Vec<Arc<SortedRun>> = {
            let mut st = self.state.lock();
            if st.merging {
                return Ok(MergeReport::default());
            }
            let plan: Vec<Arc<SortedRun>> = st.runs.runs().to_vec();
            if plan.len() < 2 {
                return Ok(MergeReport::default());
            }
            st.merging = true;
            plan
        };
        self.execute_merge(session, plan, true)
    }

    /// Worker-side compaction: merge 1-pass runs down to the
    /// query-page budget, one planned merge at a time.
    fn background_compact(&self, session: &SessionHandle) -> MasmResult<()> {
        loop {
            let plan = {
                let mut st = self.state.lock();
                if st.merging || st.migrating {
                    return Ok(());
                }
                match st.runs.plan_merge(&self.cfg) {
                    Some(plan) => {
                        st.merging = true;
                        plan
                    }
                    None => return Ok(()),
                }
            };
            self.execute_merge(session, plan, self.cfg.merge_duplicates)?;
        }
    }

    /// The plan → execute merge pipeline: [`compact_block_runs`] plans
    /// move/merge segments from the inputs' zone maps, relinks
    /// non-overlapping blocks verbatim (move chunks pipelined `async`
    /// up to the configured device queue depth), and streams decodes of
    /// genuinely overlapping key ranges. The caller must have set
    /// `merging`; this clears it on every path.
    fn execute_merge(
        &self,
        session: &SessionHandle,
        plan: Vec<Arc<SortedRun>>,
        fold: bool,
    ) -> MasmResult<MergeReport> {
        let mut _sp = self.trace().map(|t| {
            let s = session.clone();
            let mut g = t.span("compact", self.track(), move || s.now());
            g.set_arg("inputs", plan.len() as u64);
            g
        });
        let result = self.execute_merge_inner(session, plan, fold);
        if result.is_err() {
            let mut st = self.state.lock();
            st.merging = false;
            self.maybe_rewind(&mut st);
            drop(st);
            self.quiesce.notify_all();
        }
        result
    }

    fn execute_merge_inner(
        &self,
        session: &SessionHandle,
        plan: Vec<Arc<SortedRun>>,
        fold: bool,
    ) -> MasmResult<MergeReport> {
        // Snapshot the active-query guard under the lock, then do the
        // whole read-merge-write outside it: the inputs are immutable
        // `Arc`s and the allocator hands out a private extent. A scan
        // reservation pending at snapshot time disables folding for this
        // merge: its timestamp is unknown, so every version spanning it
        // must survive. (A reservation arriving *after* the snapshot is
        // safe — its timestamp is drawn later, hence above every update
        // already frozen in these input runs.)
        let (active, reserved): (Vec<Timestamp>, bool) = {
            let st = self.state.lock();
            (
                st.active_queries.keys().copied().collect(),
                st.scan_reservations > 0,
            )
        };
        let guard =
            |t1: Timestamp, t2: Timestamp| !reserved && !active.iter().any(|&t| t1 < t && t <= t2);
        let (mut meta, encoded, report) = compact_block_runs(
            session,
            &self.ssd,
            &self.cfg,
            &self.schema,
            &plan,
            fold.then_some(&guard as &dyn Fn(Timestamp, Timestamp) -> bool),
        )?;
        let (id, base) = {
            let mut st = self.state.lock();
            (st.runs.next_id(), st.runs.alloc_space(meta.total_bytes))
        };
        meta.base = base;
        let run = SortedRun::from_meta(id, 2, meta);
        // The simulator tracks one head position shared by reads and
        // writes, so the output's first write would classify as random
        // purely because the merge just *read* its input runs — on
        // flash the new sequential write stream pays no such penalty.
        // Prime at the extent base to drop only that cross-stream
        // artifact; writes within the run still classify on their own
        // (an out-of-order writer would surface as random_writes > 0),
        // and the flush path is untouched, so a genuine backward jump
        // after the allocator rewinds stays visible there.
        self.ssd.prime_head_position(base);
        let old_ids: Vec<u64> = plan.iter().map(|r| r.id).collect();
        let written = (|| {
            write_built(session, &self.ssd, &run, &encoded)?;
            self.wal.append(
                session,
                &WalRecord::RunCreated {
                    id,
                    base,
                    bytes: run.bytes,
                    count: run.count,
                    passes: 2,
                    max_ts: run.max_ts,
                },
            )?;
            self.wal
                .append(session, &WalRecord::RunsDeleted(old_ids.clone()))
        })();
        if let Err(e) = written {
            self.state.lock().runs.free_space(run.bytes);
            return Err(e);
        }
        self.account_run_added(&run);
        self.record_compression(&run);
        // Handoff: swap inputs for the merged output atomically. The
        // inputs' SSD extents are retired, not freed — a pinned query
        // snapshot may still be reading them.
        {
            let mut st = self.state.lock();
            st.runs.add(Arc::new(run));
            self.account_runs_removed(&st, &old_ids);
            let freed: u64 = plan.iter().map(|r| r.bytes).sum();
            st.runs.remove_ids(&old_ids);
            st.retired_bytes += freed;
            st.merging = false;
            self.epoch.fetch_add(1, Ordering::AcqRel);
            self.maybe_rewind(&mut st);
        }
        if let Some(h) = self.workers.get() {
            h.pool().counters(self.shard_id).merges.incr();
        }
        self.record_merge(report);
        self.quiesce.notify_all();
        Ok(report)
    }

    /// Open a merged range scan of `[begin, end]` as of a fresh query
    /// timestamp. This replaces `Table_range_scan` in a query plan.
    pub fn begin_scan(
        self: &Arc<Self>,
        session: SessionHandle,
        begin: Key,
        end: Key,
    ) -> MasmResult<MergeScan> {
        self.begin_scan_at(session, begin, end, None, Vec::new())
    }

    /// Open a merged range scan at an explicit timestamp (snapshot
    /// isolation) with an optional private update overlay (a
    /// transaction's own writes; §3.6).
    pub fn begin_scan_at(
        self: &Arc<Self>,
        session: SessionHandle,
        begin: Key,
        end: Key,
        as_of: Option<Timestamp>,
        mut private: Vec<UpdateRecord>,
    ) -> MasmResult<MergeScan> {
        let _setup = self.trace().map(|t| {
            let s = session.clone();
            t.span("scan.setup", self.track(), move || s.now())
        });
        let background = self.live_pool().is_some();
        enum Setup {
            Flush(u64),
            Merge(Vec<Arc<SortedRun>>),
        }
        let mut enqueue_flush: Option<(u64, u64)> = None;
        let mut enqueue_compact = false;
        let (query_ts, mem_snapshot, sealed_snaps, runs) = loop {
            let mut st = self.state.lock();
            let mut action: Option<Setup> = None;
            // Fig. 8 scan setup, lines 1–4: flush a full buffer first. A
            // full SSD is not fatal here — the scan simply reads the
            // buffer through Mem_scan; the engine reports
            // `needs_migration`.
            if st.buffer.bytes() >= self.cfg.update_buffer_bytes() as usize
                && st.runs.live_bytes() + st.buffer.bytes() as u64 <= self.cfg.ssd_capacity
            {
                let (id, bytes) = self.seal_batch_locked(&mut st, background);
                if background {
                    // Sealed batches are query-visible; the flush runs
                    // in the background and this scan starts now.
                    enqueue_flush = Some((id, bytes));
                } else {
                    action = Some(Setup::Flush(id));
                }
            }
            // Lines 5–8: cap the number of open runs by the query
            // pages. In background mode the merge is requested, not
            // awaited — the scan reads the still-live 1-pass runs.
            if action.is_none() && st.runs.len() > self.cfg.query_pages() as usize {
                if background {
                    enqueue_compact = true;
                } else if !st.merging {
                    if let Some(plan) = st.runs.plan_merge(&self.cfg) {
                        st.merging = true;
                        action = Some(Setup::Merge(plan));
                    }
                }
            }
            match action {
                Some(Setup::Flush(id)) => {
                    drop(st);
                    if let Err(e) = self.flush_batch(&session, id) {
                        // Return the batch to the buffer (it is already
                        // durable in the WAL) so nothing is lost.
                        self.abandon_batch(id);
                        return Err(e);
                    }
                }
                Some(Setup::Merge(plan)) => {
                    drop(st);
                    self.execute_merge(&session, plan, self.cfg.merge_duplicates)?;
                }
                None => {
                    let query_ts = as_of.unwrap_or_else(|| self.oracle.next());
                    let mem_snapshot = st.buffer.snapshot_range(begin, end, query_ts);
                    let sealed_snaps: Vec<Arc<Vec<UpdateRecord>>> =
                        st.sealed.iter().map(|b| Arc::clone(&b.updates)).collect();
                    let runs: Vec<Arc<SortedRun>> = st.runs.runs().to_vec();
                    let pinned = runs.len() as u64;
                    st.active_queries.insert(
                        query_ts,
                        QueryPin {
                            pages: pinned,
                            epoch: self.epoch.load(Ordering::Acquire),
                        },
                    );
                    st.pinned_pages += pinned;
                    break (query_ts, mem_snapshot, sealed_snaps, runs);
                }
            }
        };
        if let (Some((id, bytes)), Some(h)) = (enqueue_flush, self.workers.get()) {
            if let Some(t) = self.trace() {
                let track = self.track();
                let t0 = session.now();
                t.instant("batch.seal", track, t0, "bytes", bytes);
                t.flow_start("masm.flush", track, t0, self.flush_flow(id));
            }
            h.pool()
                .enqueue_flush(self.shard_id, id, bytes, session.now());
        }
        if enqueue_compact {
            if let Some(h) = self.workers.get() {
                if let Some(t) = self.trace() {
                    let flow = t.next_flow_id();
                    self.compact_flow.store(flow, Ordering::Relaxed);
                    t.flow_start("masm.compact", self.track(), session.now(), flow);
                }
                h.pool().enqueue_compact(self.shard_id, session.now());
            }
        }

        let mut streams: Vec<UpdateStream> =
            Vec::with_capacity(runs.len() + sealed_snaps.len() + 2);
        for run in &runs {
            if run.max_key < begin || run.min_key > end {
                continue;
            }
            let mut scan = RunScan::with_cache(
                self.ssd.clone(),
                session.clone(),
                Arc::clone(run),
                Some(Arc::clone(&self.cache)),
                begin,
                end,
            )
            .with_fetch_histogram(Arc::clone(&self.metrics.block_fetch));
            if let Some(t) = self.tracer_arc() {
                scan = scan.with_trace(t, self.shard_id as u32);
            }
            streams.push(Box::new(scan));
        }
        // Sealed batches (awaiting background flush) are part of the
        // snapshot: their updates are not yet in any run.
        for batch in &sealed_snaps {
            let slice: Vec<UpdateRecord> = batch
                .iter()
                .filter(|u| u.key >= begin && u.key <= end)
                .cloned()
                .collect();
            if !slice.is_empty() {
                streams.push(Box::new(slice.into_iter()));
            }
        }
        streams.push(Box::new(mem_snapshot.into_iter()));
        if !private.is_empty() {
            private.sort_by_key(|a| (a.key, a.ts));
            private.retain(|u| u.key >= begin && u.key <= end);
            streams.push(Box::new(private.into_iter()));
        }

        let data = self.heap.scan_range(session.clone(), begin, end).with_ts();
        let updates = MergeUpdates::new(streams, self.schema.clone(), query_ts);
        let join = MergeDataUpdates::new(data, updates, self.schema.clone());
        Ok(MergeScan {
            inner: join,
            engine: Arc::clone(self),
            session,
            ts: query_ts,
            cpu_per_record: 0,
            closed: false,
        })
    }

    /// Point lookup: the freshest visible version of `key`.
    ///
    /// Consults, in order, the in-memory update buffer, the
    /// materialized runs — per-run bloom filters reject runs that
    /// definitely lack the key with zero I/O, and needed blocks come
    /// through the shared [`BlockCache`] — and finally the heap page
    /// that would hold the key. All updates visible at the lookup's
    /// timestamp are applied to the heap base record (page timestamps
    /// skip updates a migration already folded in), so the result is
    /// exactly what a [`MasmEngine::begin_scan`] of `[key, key]` would
    /// return, at a fraction of the setup cost.
    pub fn get(self: &Arc<Self>, session: &SessionHandle, key: Key) -> MasmResult<Option<Record>> {
        let _t = Timer::start(&self.metrics.get, || session.now());
        let _sp = self.trace().and_then(|t| {
            let s = session.clone();
            t.op_span("get", self.track(), move || s.now())
        });
        // Register as an active query so a concurrent migration cannot
        // retire the runs (and recycle their SSD space) mid-lookup.
        let (ts, runs, sealed, mem) = {
            let mut st = self.state.lock();
            let ts = self.oracle.next();
            st.active_queries.insert(
                ts,
                QueryPin {
                    pages: 0,
                    epoch: self.epoch.load(Ordering::Acquire),
                },
            );
            let sealed: Vec<Arc<Vec<UpdateRecord>>> =
                st.sealed.iter().map(|b| Arc::clone(&b.updates)).collect();
            (
                ts,
                st.runs.runs().to_vec(),
                sealed,
                st.buffer.snapshot_range(key, key, ts),
            )
        };
        let result = (|| {
            let mut updates: Vec<UpdateRecord> = Vec::new();
            for run in &runs {
                updates.extend(
                    lookup_in_run(session, &self.ssd, run, Some(&self.cache), key)?
                        .into_iter()
                        .filter(|u| u.ts <= ts),
                );
            }
            for batch in &sealed {
                updates.extend(batch.iter().filter(|u| u.key == key && u.ts <= ts).cloned());
            }
            updates.extend(mem);
            updates.sort_by_key(|u| u.ts);

            let (base, page_ts) = match self.heap.locate(key) {
                Some(logical) => {
                    let page = self.heap.read_page(session, logical)?;
                    let rec = page.records().find(|r| r.key == key);
                    (rec, page.timestamp())
                }
                None => (None, 0),
            };
            let mut current = base;
            for u in updates {
                if u.ts > page_ts {
                    current = u.apply_to(current, &self.schema);
                }
            }
            Ok(current)
        })();
        self.finish_scan(ts);
        result
    }

    fn finish_scan(&self, ts: Timestamp) {
        let mut st = self.state.lock();
        let pinned = st.active_queries.remove(&ts).map_or(0, |pin| pin.pages);
        st.pinned_pages -= pinned.min(st.pinned_pages);
        self.maybe_rewind(&mut st);
        drop(st);
        self.quiesce.notify_all();
    }

    /// Announce a scan whose timestamp is not yet registered here.
    ///
    /// [`crate::ShardedEngine::scan_at`] draws one timestamp for all
    /// shards and then pins them one by one; a shard whose pin has not
    /// landed yet must not fold duplicate versions across the pending
    /// timestamp (seal-time or merge-time `fold_duplicates` would keep
    /// only the newer version, which the scan then filters out, exposing
    /// an older one — a backwards read) or migrate past it (heap pages
    /// stamped with a migration timestamp above the scan's mask the
    /// updates it should see). While at least one reservation is
    /// pending, duplicate folding keeps every version and the migration
    /// gate waits.
    pub(crate) fn reserve_scan(&self) {
        self.state.lock().scan_reservations += 1;
    }

    /// Resolve a [`MasmEngine::reserve_scan`]: the scan's timestamp is
    /// now registered in `active_queries` (or the scan was abandoned),
    /// so the ordinary per-timestamp guards take over.
    pub(crate) fn release_scan_reservation(&self) {
        let mut st = self.state.lock();
        debug_assert!(st.scan_reservations > 0, "unbalanced scan reservation");
        st.scan_reservations = st.scan_reservations.saturating_sub(1);
        drop(st);
        self.quiesce.notify_all();
    }

    /// Recycle retired run extents once the engine quiesces: no active
    /// query snapshot can still be reading a retired run, no sealed
    /// batch has an extent allocation in flight, and no merge or
    /// migration holds an unpublished extent. Until then the bump
    /// allocator never reuses space, which is what makes lock-free
    /// snapshot reads of retired runs safe.
    fn maybe_rewind(&self, st: &mut EngineState) {
        if st.retired_bytes == 0
            || !st.active_queries.is_empty()
            || !st.sealed.is_empty()
            || st.merging
            || st.migrating
        {
            return;
        }
        if let Some(t) = self.trace() {
            // Emitting under the state lock is fine: the recorder is
            // lock-free and never does I/O.
            t.instant(
                "epoch.retire",
                self.track(),
                self.ssd.clock().now(),
                "bytes",
                st.retired_bytes,
            );
        }
        st.retired_bytes = 0;
        // Recompute allocator state from the live runs: retired run
        // space becomes reusable only now that no scan can touch it.
        let (mut high, mut live) = (0u64, 0u64);
        for r in st.runs.runs() {
            high = high.max(r.base + r.bytes);
            live += r.bytes;
        }
        st.runs
            .set_space(SsdSpace::with_state(self.cfg.ssd_region_base, high, live));
    }

    /// Migrate all currently materialized runs back into the main data,
    /// in place (§3.2 "In-Place Migration"). Blocks until queries older
    /// than the migration timestamp finish; queries arriving afterwards
    /// run concurrently and stay correct via page timestamps.
    pub fn migrate(self: &Arc<Self>, session: &SessionHandle) -> MasmResult<MigrationReport> {
        {
            let mut st = self.state.lock();
            if st.migrating {
                return Ok(MigrationReport::default());
            }
            st.migrating = true;
        }
        let _sp = self.trace().map(|t| {
            let s = session.clone();
            t.span("migrate", self.track(), move || s.now())
        });
        let result = self.migrate_inner(session);
        if result.is_err() {
            // Error path must never wedge the engine: clear the claim
            // so the next migrate (or retry) can run, and wake waiters.
            let mut st = self.state.lock();
            st.migrating = false;
            self.maybe_rewind(&mut st);
            drop(st);
            self.quiesce.notify_all();
        }
        result
    }

    /// Drain buffered and sealed updates into runs so every update
    /// earlier than the migration timestamp lives in a run: migrated
    /// pages carry `mig_ts`, which must truthfully mean "all updates
    /// with ts ≤ mig_ts are in this page". Returns the migration
    /// timestamp and run snapshot, or `None` when there is nothing to
    /// migrate. Caller must hold the `migrating` claim.
    fn quiesce_updates_for_migration(
        &self,
        session: &SessionHandle,
    ) -> MasmResult<Option<(Timestamp, Vec<Arc<SortedRun>>)>> {
        loop {
            let flush_id = {
                let mut st = self.state.lock();
                if !st.buffer.is_empty() {
                    Some(self.seal_batch_locked(&mut st, false).0)
                } else if let Some(b) = st.sealed.iter().find(|b| !b.claimed) {
                    Some(b.id)
                } else if !st.sealed.is_empty() {
                    // A worker owns the remaining batches; wait for it
                    // to publish (or unclaim on error) and re-check.
                    self.quiesce.wait(st.inner_mut());
                    continue;
                } else if st.runs.is_empty() {
                    return Ok(None);
                } else {
                    return Ok(Some((self.oracle.next(), st.runs.runs().to_vec())));
                }
            };
            if let Some(id) = flush_id {
                self.flush_batch(session, id)?;
            }
        }
    }

    fn migrate_inner(self: &Arc<Self>, session: &SessionHandle) -> MasmResult<MigrationReport> {
        let Some((mig_ts, runs)) = self.quiesce_updates_for_migration(session)? else {
            self.state.lock().migrating = false;
            return Ok(MigrationReport::default());
        };
        self.wal.append(
            session,
            &WalRecord::MigrationBegin {
                ts: mig_ts,
                run_ids: runs.iter().map(|r| r.id).collect(),
            },
        )?;
        // Past the early returns: this is a real migration, time it
        // end-to-end (quiesce wait + merge + run retirement).
        let _t = Timer::start(&self.metrics.migrate, || session.now());

        // Wait for queries earlier than t (§3.2), and for pending scan
        // reservations — their timestamps are unknown and may land below
        // t. Queries arriving after t run concurrently throughout — page
        // timestamps keep them correct, and the runs' SSD extents stay
        // allocated until the post-quiesce rewind.
        {
            // Session cursors do not advance while parked on the
            // condvar, so the quiesce wait is timed on the global
            // device clock.
            let q0 = self.ssd.clock().now();
            let mut st = self.state.lock();
            while st.scan_reservations > 0
                || st.active_queries.keys().next().is_some_and(|&t| t < mig_ts)
            {
                self.quiesce.wait(st.inner_mut());
            }
            drop(st);
            let q1 = self.ssd.clock().now();
            if q1 > q0 {
                if let Some(t) = self.trace() {
                    t.span_event("migrate.quiesce", self.track(), q0, q1 - q0, "ts", mig_ts);
                }
            }
        }

        let report = self.drive_migration(session, mig_ts, &runs)?;

        let ids: Vec<u64> = runs.iter().map(|r| r.id).collect();
        self.wal
            .append(session, &WalRecord::RunsDeleted(ids.clone()))?;
        self.wal
            .append(session, &WalRecord::MigrationEnd { ts: mig_ts })?;
        // Handoff: retire the migrated runs. Their extents are recycled
        // only at the quiesce rewind, so queries that started after
        // `mig_ts` and still hold the old snapshot keep reading safely.
        {
            let mut st = self.state.lock();
            self.account_runs_removed(&st, &ids);
            let freed: u64 = runs.iter().map(|r| r.bytes).sum();
            st.runs.remove_ids(&ids);
            st.retired_bytes += freed;
            st.migrating = false;
            self.epoch.fetch_add(1, Ordering::AcqRel);
            self.maybe_rewind(&mut st);
        }
        if let Some(h) = self.workers.get() {
            h.pool().counters(self.shard_id).migrations.incr();
        }
        self.quiesce.notify_all();
        Ok(report)
    }

    /// Partial (per-range) migration — §3.5 "Improving Migration":
    /// apply only the cached updates whose keys fall in `[begin, end]`
    /// to the overlapping data pages, distributing migration cost across
    /// several smaller operations. Runs are **not** deleted (they still
    /// hold updates outside the range); a later full [`MasmEngine::migrate`]
    /// retires them. Page timestamps keep double-application impossible,
    /// so partial and full migrations compose freely.
    pub fn migrate_range(
        self: &Arc<Self>,
        session: &SessionHandle,
        begin: Key,
        end: Key,
    ) -> MasmResult<MigrationReport> {
        {
            let mut st = self.state.lock();
            if st.migrating || (st.runs.is_empty() && st.buffer.is_empty() && st.sealed.is_empty())
            {
                return Ok(MigrationReport::default());
            }
            st.migrating = true;
        }
        let result = self.migrate_range_inner(session, begin, end);
        if result.is_err() {
            let mut st = self.state.lock();
            st.migrating = false;
            self.maybe_rewind(&mut st);
            drop(st);
            self.quiesce.notify_all();
        }
        result
    }

    fn migrate_range_inner(
        self: &Arc<Self>,
        session: &SessionHandle,
        begin: Key,
        end: Key,
    ) -> MasmResult<MigrationReport> {
        let Some((mig_ts, runs)) = self.quiesce_updates_for_migration(session)? else {
            self.state.lock().migrating = false;
            return Ok(MigrationReport::default());
        };
        let _t = Timer::start(&self.metrics.migrate, || session.now());
        // Queries older than the migration timestamp must not observe
        // pages stamped with it (§3.2); a pending scan reservation may
        // resolve below it, so it blocks too.
        {
            let mut st = self.state.lock();
            while st.scan_reservations > 0
                || st.active_queries.keys().next().is_some_and(|&t| t < mig_ts)
            {
                self.quiesce.wait(st.inner_mut());
            }
        }

        // Fan-in-driven prefetch: each of the k run scans keeps k reads
        // in flight so the device queue stays full (§3.7 at scale).
        let overlapping: Vec<&Arc<SortedRun>> = runs
            .iter()
            .filter(|r| r.max_key >= begin && r.min_key <= end)
            .collect();
        let depth = self.cfg.merge_prefetch_depth(overlapping.len());
        let streams: Vec<UpdateStream> = overlapping
            .into_iter()
            .map(|r| {
                Box::new(
                    RunScan::new(self.ssd.clone(), session.clone(), Arc::clone(r), begin, end)
                        .with_prefetch_depth(depth),
                ) as UpdateStream
            })
            .collect();
        let updates = MergeUpdates::new(streams, self.schema.clone(), mig_ts).peekable();
        let mut rewriter = self.heap.rewriter_range(session.clone(), begin, end);
        let report =
            self.rewrite_with_updates(session, mig_ts, updates, &mut rewriter, runs.len())?;
        rewriter.finish();

        {
            let mut st = self.state.lock();
            st.migrating = false;
            self.maybe_rewind(&mut st);
        }
        self.quiesce.notify_all();
        Ok(report)
    }

    /// The migration inner loop: chunked merge of the heap with the
    /// sorted runs, writing pages stamped with the migration timestamp.
    fn drive_migration(
        &self,
        session: &SessionHandle,
        mig_ts: Timestamp,
        runs: &[Arc<SortedRun>],
    ) -> MasmResult<MigrationReport> {
        // Migration reads bypass the block cache: the runs are retired as
        // soon as the migration completes, so inserting their blocks
        // would evict hot query blocks for entries that can never be hit
        // again (run ids are not reused). Prefetch depth follows the
        // migration fan-in so all k run scans keep the SSD queue full
        // while the merged stream drains into the heap rewrite.
        let depth = self.cfg.merge_prefetch_depth(runs.len());
        let streams: Vec<UpdateStream> = runs
            .iter()
            .map(|r| {
                Box::new(
                    RunScan::new(
                        self.ssd.clone(),
                        session.clone(),
                        Arc::clone(r),
                        0,
                        Key::MAX,
                    )
                    .with_prefetch_depth(depth),
                ) as UpdateStream
            })
            .collect();
        let mut updates = MergeUpdates::new(streams, self.schema.clone(), mig_ts).peekable();
        let mut applied = 0u64;

        if self.heap.num_pages() == 0 {
            // Empty table: materialize all insert/replace updates as a
            // fresh bulk load.
            let records: Vec<Record> = std::iter::from_fn(|| updates.next())
                .filter_map(|u| {
                    applied += 1;
                    u.apply_to(None, &self.schema)
                })
                .collect();
            if !records.is_empty() {
                self.heap.bulk_load(session, records, 1.0)?;
                self.log_heap_loaded(session, self.oracle.next())?;
            }
            return Ok(MigrationReport {
                ts: mig_ts,
                runs_migrated: runs.len(),
                updates_applied: applied,
                pages_written: self.heap.num_pages() as u64,
            });
        }

        let mut rewriter = self.heap.rewriter(session.clone());
        let mut report =
            self.rewrite_with_updates(session, mig_ts, updates, &mut rewriter, runs.len())?;
        rewriter.finish();
        report.updates_applied += applied;
        Ok(report)
    }

    /// Shared chunk-merge loop of full and partial migration: pull
    /// chunks from `rewriter`, outer-join them with `updates`, and
    /// commit pages stamped with the migration timestamp.
    fn rewrite_with_updates(
        &self,
        session: &SessionHandle,
        mig_ts: Timestamp,
        mut updates: std::iter::Peekable<MergeUpdates>,
        rewriter: &mut masm_pagestore::HeapRewriter<'_>,
        runs_count: usize,
    ) -> MasmResult<MigrationReport> {
        let mut applied = 0u64;
        let mut pages_written = 0u64;
        let page_size = self.heap.config().page_size;
        while let Some(old_pages) = rewriter.next_chunk()? {
            let at_end = rewriter.at_end();
            let chunk_max = old_pages
                .iter()
                .filter_map(|p| p.max_key())
                .max()
                .unwrap_or(Key::MAX);

            let mut out: Vec<Record> = Vec::new();
            for page in &old_pages {
                let page_ts = page.timestamp();
                for record in page.records() {
                    // Emit updates for keys before this record.
                    while updates.peek().is_some_and(|u| u.key < record.key) {
                        let u = updates.next().expect("peeked");
                        applied += 1;
                        if let Some(r) = u.apply_to(None, &self.schema) {
                            out.push(r);
                        }
                    }
                    if updates.peek().is_some_and(|u| u.key == record.key) {
                        let u = updates.next().expect("peeked");
                        applied += 1;
                        let base = Some(record);
                        let merged = if u.ts > page_ts {
                            u.apply_to(base, &self.schema)
                        } else {
                            base
                        };
                        if let Some(r) = merged {
                            out.push(r);
                        }
                    } else {
                        out.push(record);
                    }
                }
            }
            // Absorb gap/trailing inserts belonging to this chunk.
            while updates.peek().is_some_and(|u| at_end || u.key <= chunk_max) {
                let u = updates.next().expect("peeked");
                applied += 1;
                if let Some(r) = u.apply_to(None, &self.schema) {
                    out.push(r);
                }
            }
            out.sort_by_key(|r| r.key);

            let mut new_pages: Vec<Page> = Vec::with_capacity(old_pages.len());
            let mut cur = Page::new(page_size);
            cur.set_timestamp(mig_ts);
            for r in &out {
                if !cur.fits(r) {
                    new_pages.push(std::mem::replace(&mut cur, Page::new(page_size)));
                    cur.set_timestamp(mig_ts);
                }
                assert!(cur.append(r), "record exceeds page size");
            }
            if cur.record_count() > 0 {
                new_pages.push(cur);
            }
            pages_written += new_pages.len() as u64;
            let commit = rewriter.commit_chunk(new_pages)?;
            self.wal.append(
                session,
                &WalRecord::MapSplice {
                    seq: self.oracle.next(),
                    commit,
                },
            )?;
        }

        Ok(MigrationReport {
            ts: mig_ts,
            runs_migrated: runs_count,
            updates_applied: applied,
            pages_written,
        })
    }

    /// Rebuild an engine after a crash: heap metadata, run set, and the
    /// in-memory update buffer come back from the redo log and the
    /// (durable) SSD; an interrupted migration is re-driven to
    /// completion (idempotent thanks to page timestamps). A torn WAL
    /// tail — a record cut off mid-append by the crash — is truncated
    /// and reported in [`RecoveryReport::wal_torn_bytes`]; corruption
    /// anywhere *before* the tail stays a hard error.
    pub fn recover(
        heap: Arc<TableHeap>,
        ssd: SimDevice,
        wal_dev: SimDevice,
        schema: Schema,
        cfg: MasmConfig,
    ) -> MasmResult<(Arc<Self>, RecoveryReport)> {
        Self::recover_traced(heap, ssd, wal_dev, schema, cfg, None)
    }

    /// [`MasmEngine::recover`] with an optional flight recorder: the
    /// tracer is installed before replay side effects begin, so the
    /// recovery itself shows up as a `recovery` span (plus
    /// `recovery.torn_tail` / `recovery.migration_redo` instants).
    pub fn recover_traced(
        heap: Arc<TableHeap>,
        ssd: SimDevice,
        wal_dev: SimDevice,
        schema: Schema,
        cfg: MasmConfig,
        tracer: Option<Arc<Tracer>>,
    ) -> MasmResult<(Arc<Self>, RecoveryReport)> {
        cfg.validate()?;
        let session = SessionHandle::fresh(ssd.clock().clone());
        let mut parsed = Self::parse_wal(&session, &wal_dev)?;
        apply_heap_events(&heap, std::mem::take(&mut parsed.heap_events));
        let unfinished = parsed.unfinished_migration;
        let (engine, mut report) = Self::recover_from_parsed(
            heap,
            ssd,
            wal_dev,
            schema,
            cfg,
            TimestampOracle::new(),
            0,
            true,
            parsed,
            tracer,
        )?;
        if unfinished {
            engine.migrate(&session)?;
            engine.note_migration_redriven();
            report.redid_migration = true;
        }
        Ok((engine, report))
    }

    /// Fold one redo log into its recovery-relevant state (the longest
    /// valid prefix; torn tails are truncated here, per [`Wal::replay`]).
    pub(crate) fn parse_wal(session: &SessionHandle, wal_dev: &SimDevice) -> MasmResult<ParsedWal> {
        let replay = Wal::replay(session, wal_dev)?;
        let mut parsed = ParsedWal {
            manifest: None,
            live_runs: BTreeMap::new(),
            pending: Vec::new(),
            max_ts: 0,
            unfinished_migration: false,
            heap_events: Vec::new(),
            records_replayed: replay.records.len() as u64,
            end_offset: replay.end_offset,
            torn_bytes: replay.torn_bytes,
        };
        for rec in replay.records {
            match rec {
                WalRecord::Update(u) => {
                    parsed.max_ts = parsed.max_ts.max(u.ts);
                    parsed.pending.push(u);
                }
                WalRecord::RunCreated {
                    id,
                    base,
                    bytes,
                    passes,
                    max_ts: run_max_ts,
                    ..
                } => {
                    parsed.live_runs.insert(
                        id,
                        RecoveredRun {
                            base,
                            bytes,
                            passes,
                        },
                    );
                    if passes == 1 {
                        // Updates at or below the run's max timestamp
                        // are durable in the run; the rest were still
                        // buffer-resident at the crash. A timestamp
                        // filter (not log position) because concurrent
                        // appenders interleave Update and RunCreated
                        // records; re-applied duplicates are idempotent.
                        parsed.pending.retain(|u| u.ts > run_max_ts);
                    }
                }
                WalRecord::RunsDeleted(ids) => {
                    for id in ids {
                        parsed.live_runs.remove(&id);
                    }
                }
                WalRecord::MigrationBegin { ts, .. } => {
                    parsed.max_ts = parsed.max_ts.max(ts);
                    parsed.unfinished_migration = true;
                }
                WalRecord::MigrationEnd { .. } => {
                    parsed.unfinished_migration = false;
                }
                WalRecord::HeapLoaded {
                    seq,
                    base,
                    page_size,
                    min_keys,
                    record_count,
                } => {
                    parsed.max_ts = parsed.max_ts.max(seq);
                    parsed.heap_events.push(HeapEvent::Load {
                        seq,
                        base,
                        page_size,
                        min_keys,
                        record_count,
                    });
                }
                WalRecord::MapSplice { seq, commit } => {
                    parsed.max_ts = parsed.max_ts.max(seq);
                    parsed.heap_events.push(HeapEvent::Splice { seq, commit });
                }
                WalRecord::Manifest(m) => {
                    if parsed.manifest.as_ref().is_some_and(|prev| *prev != m) {
                        return Err(MasmError::Corrupt("conflicting manifests in one WAL"));
                    }
                    parsed.manifest = Some(m);
                }
            }
        }
        Ok(parsed)
    }

    /// Build a recovered engine from a parsed redo log. The heap must
    /// already hold its recovered metadata (see [`apply_heap_events`] —
    /// applied per log by [`MasmEngine::recover_traced`], or merged
    /// across all logs by [`crate::ShardedEngine::recover`]). The
    /// shared `oracle` is advanced past this log's durable maximum
    /// (order-independent, so shards fold in any order). Does *not*
    /// re-drive an interrupted migration — the caller owns that (and
    /// its cross-shard staggering).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn recover_from_parsed(
        heap: Arc<TableHeap>,
        ssd: SimDevice,
        wal_dev: SimDevice,
        schema: Schema,
        cfg: MasmConfig,
        oracle: TimestampOracle,
        shard_id: usize,
        spawn_workers: bool,
        parsed: ParsedWal,
        tracer: Option<Arc<Tracer>>,
    ) -> MasmResult<(Arc<Self>, RecoveryReport)> {
        cfg.validate()?;
        let t0 = ssd.clock().now();
        let session = SessionHandle::fresh(ssd.clock().clone());
        let ParsedWal {
            live_runs,
            pending,
            mut max_ts,
            end_offset,
            torn_bytes,
            records_replayed,
            ..
        } = parsed;

        // Re-open run metadata from the durable, checksummed block-run
        // footers: zone maps, bloom filters, and key/timestamp bounds
        // come back without decoding a single update record.
        let mut runs = RunSet::new();
        let mut high_water = 0u64;
        let mut live_bytes = 0u64;
        let mut max_run_id = 0u64;
        let mut rebuilt: Vec<Arc<SortedRun>> = Vec::new();
        for (id, info) in &live_runs {
            let run = recover_run(&session, &ssd, *id, info.base, info.bytes, info.passes)?;
            max_ts = max_ts.max(run.max_ts);
            high_water = high_water.max(info.base + info.bytes);
            live_bytes += info.bytes;
            max_run_id = max_run_id.max(*id);
            rebuilt.push(Arc::new(run));
        }
        runs.set_space(SsdSpace::with_state(
            cfg.ssd_region_base,
            high_water,
            live_bytes,
        ));
        for r in rebuilt {
            runs.add(r);
        }
        runs.resume_ids_after(max_run_id);
        let runs_recovered = runs.len();

        // Crash-snapshot devices carry no write-head position. Prime
        // both heads at the recovered append points so the first
        // post-recovery write continues the sequential pattern instead
        // of being charged as a seek (design goal 2: random_writes
        // stays 0 across a crash).
        ssd.prime_head_position_if_unset(high_water.max(cfg.ssd_region_base));
        wal_dev.prime_head_position_if_unset(end_offset);

        oracle.advance_past(max_ts);

        let mut buffer = UpdateBuffer::new(cfg.update_buffer_bytes() as usize);
        let updates_recovered = pending.len() as u64;
        for u in pending {
            buffer.push(u);
        }

        // Re-pin the recovered runs' metadata footprint in the cache
        // accounting (zone maps + blooms live as long as the runs do),
        // and rebuild the codec accounting from their zone maps.
        let cache = Arc::new(BlockCache::with_config(cfg.cache_config()));
        let mut compression = CompressionReport::default();
        for r in runs.runs() {
            cache.retain_meta_bytes(r.memory_bytes());
            compression.absorb(&r.meta.compression());
        }

        let engine = Arc::new(MasmEngine {
            heap,
            ssd,
            cache,
            cfg,
            schema,
            oracle,
            state: TrackedMutex::new(EngineState {
                buffer,
                runs,
                sealed: Vec::new(),
                next_batch: 0,
                active_queries: BTreeMap::new(),
                pinned_pages: 0,
                retired_bytes: 0,
                merging: false,
                migrating: false,
                scan_reservations: 0,
            }),
            quiesce: Condvar::new(),
            wal: Wal::new(wal_dev, end_offset),
            epoch: AtomicU64::new(0),
            workers: OnceLock::new(),
            shard_id,
            ingested_updates: AtomicU64::new(0),
            ingested_bytes: AtomicU64::new(0),
            commit_index: Mutex::new(std::collections::HashMap::new()),
            last_merge: Mutex::new(None),
            merge_totals: Mutex::new(MergeReport::default()),
            compression_totals: Mutex::new(compression),
            metrics: EngineMetrics::new(),
            tracer: OnceLock::new(),
            compact_flow: AtomicU64::new(0),
            migrate_flow: AtomicU64::new(0),
        });
        if let Some(t) = tracer {
            engine.install_tracer(t);
        }
        if spawn_workers {
            Self::start_workers(&engine);
        } else {
            engine.cache.bind_registry(&engine.metrics.registry);
        }

        let rc = &engine.metrics.recovery;
        rc.records_replayed.add(records_replayed);
        rc.updates_rebuilt.add(updates_recovered);
        rc.runs_recovered.add(runs_recovered as u64);
        if torn_bytes > 0 {
            rc.torn_tail.add(1);
            rc.torn_bytes.add(torn_bytes);
        }
        if let Some(t) = engine.trace() {
            let t1 = engine.ssd.clock().now();
            t.span_event(
                "recovery",
                engine.track(),
                t0,
                (t1 - t0).max(1),
                "records",
                records_replayed,
            );
            if torn_bytes > 0 {
                t.instant(
                    "recovery.torn_tail",
                    engine.track(),
                    t1,
                    "bytes",
                    torn_bytes,
                );
            }
        }

        let report = RecoveryReport {
            updates_recovered,
            runs_recovered,
            redid_migration: false,
            wal_records_replayed: records_replayed,
            wal_torn_bytes: torn_bytes,
        };
        Ok((engine, report))
    }

    /// Record (counter + trace instant) that an interrupted migration
    /// was re-driven to completion on this engine during recovery.
    pub(crate) fn note_migration_redriven(&self) {
        self.metrics.recovery.migrations_redriven.add(1);
        if let Some(t) = self.trace() {
            t.instant(
                "recovery.migration_redo",
                self.track(),
                self.ssd.clock().now(),
                "shard",
                self.shard_id as u64,
            );
        }
    }
}

/// A merged range scan: the operator tree of Figure 6 rooted at
/// `Merge_data_updates`, plus the bookkeeping that lets migration wait
/// for earlier queries.
pub struct MergeScan {
    inner: MergeDataUpdates<TsRangeScan, MergeUpdates>,
    engine: Arc<MasmEngine>,
    session: SessionHandle,
    ts: Timestamp,
    cpu_per_record: u64,
    closed: bool,
}

impl MergeScan {
    /// This query's timestamp.
    pub fn timestamp(&self) -> Timestamp {
        self.ts
    }

    /// Inject CPU cost per returned record (Figure 13's experiment).
    pub fn with_cpu_per_record(mut self, ns: u64) -> Self {
        self.cpu_per_record = ns;
        self
    }
}

impl Iterator for MergeScan {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        let start = self.session.now();
        let r = self.inner.next();
        if r.is_some() {
            if self.cpu_per_record > 0 {
                self.session.cpu(self.cpu_per_record);
            }
            // Record only yielded records, so the histogram's count
            // equals the number of records scans returned.
            self.engine
                .metrics
                .scan_next
                .record(self.session.now().saturating_sub(start));
        }
        r
    }
}

impl Drop for MergeScan {
    fn drop(&mut self) {
        if !self.closed {
            self.closed = true;
            self.engine.finish_scan(self.ts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masm_pagestore::HeapConfig;
    use masm_storage::{DeviceProfile, SimClock};

    fn schema() -> Schema {
        Schema::synthetic_100b()
    }

    fn payload(measure: u32) -> Vec<u8> {
        let s = schema();
        let mut p = s.empty_payload();
        s.set_u32(&mut p, 0, measure);
        p
    }

    struct Fixture {
        engine: Arc<MasmEngine>,
        session: SessionHandle,
        #[allow(dead_code)]
        clock: SimClock,
    }

    fn fixture(n_records: u64) -> Fixture {
        let clock = SimClock::new();
        let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let wal_dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
        let engine =
            MasmEngine::new(heap, ssd, wal_dev, schema(), MasmConfig::small_for_tests()).unwrap();
        let session = SessionHandle::fresh(clock.clone());
        if n_records > 0 {
            engine
                .load_table(
                    &session,
                    (0..n_records).map(|i| Record::new(i * 2, payload(i as u32))),
                    1.0,
                )
                .unwrap();
        }
        Fixture {
            engine,
            session,
            clock,
        }
    }

    fn scan_keys(f: &Fixture, begin: Key, end: Key) -> Vec<Key> {
        f.engine
            .begin_scan(f.session.clone(), begin, end)
            .unwrap()
            .map(|r| r.key)
            .collect()
    }

    #[test]
    fn scan_without_updates_matches_heap() {
        let f = fixture(1000);
        let keys = scan_keys(&f, 0, u64::MAX);
        assert_eq!(keys.len(), 1000);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn freshly_applied_updates_visible_to_scans() {
        let f = fixture(100);
        // Insert an odd key, delete an even key, modify another.
        f.engine
            .apply_update(&f.session, 41, UpdateOp::Insert(payload(999)))
            .unwrap();
        f.engine
            .apply_update(&f.session, 10, UpdateOp::Delete)
            .unwrap();
        f.engine
            .apply_update(
                &f.session,
                20,
                UpdateOp::Modify(vec![crate::update::FieldPatch {
                    field: 0,
                    value: 777u32.to_le_bytes().to_vec(),
                }]),
            )
            .unwrap();
        let recs: Vec<Record> = f
            .engine
            .begin_scan(f.session.clone(), 0, 60)
            .unwrap()
            .collect();
        let keys: Vec<Key> = recs.iter().map(|r| r.key).collect();
        assert!(keys.contains(&41), "insert visible");
        assert!(!keys.contains(&10), "delete visible");
        let r20 = recs.iter().find(|r| r.key == 20).unwrap();
        assert_eq!(schema().get_u32(&r20.payload, 0), 777, "modify visible");
    }

    #[test]
    fn updates_after_query_start_invisible() {
        let f = fixture(100);
        let scan = f.engine.begin_scan(f.session.clone(), 0, u64::MAX).unwrap();
        // This update commits after the scan's timestamp.
        f.engine
            .apply_update(&f.session, 31, UpdateOp::Insert(payload(1)))
            .unwrap();
        let keys: Vec<Key> = scan.map(|r| r.key).collect();
        assert!(!keys.contains(&31));
        // A later scan sees it.
        assert!(scan_keys(&f, 0, u64::MAX).contains(&31));
    }

    #[test]
    fn buffer_flushes_to_runs_and_stays_visible() {
        let f = fixture(1000);
        // Push enough updates to force several flushes.
        for i in 0..3000u64 {
            f.engine
                .apply_update(&f.session, i * 2 + 1, UpdateOp::Insert(payload(i as u32)))
                .unwrap();
        }
        assert!(f.engine.run_count() > 0, "runs materialized");
        let keys = scan_keys(&f, 0, 1000);
        // All odd and even keys up to 1000.
        assert_eq!(keys.len(), 1001);
        assert!(keys.windows(2).all(|w| w[0] + 1 == w[1]));
    }

    #[test]
    fn no_random_ssd_writes_design_goal_2() {
        let f = fixture(100);
        f.engine.ssd().reset_stats();
        for i in 0..5000u64 {
            f.engine
                .apply_update(&f.session, i * 2 + 1, UpdateOp::Insert(payload(1)))
                .unwrap();
        }
        // Flushes, and possibly 2-pass merges, happened.
        let stats = f.engine.ssd().stats();
        assert!(stats.write_ops > 0);
        // Run allocations are contiguous; at most one "random" write per
        // run start (no predecessor continuation).
        assert!(
            stats.random_writes as usize <= f.engine.run_count() + 64,
            "{stats:?}"
        );
    }

    #[test]
    fn migration_applies_everything_and_clears_runs() {
        let f = fixture(500);
        for i in 0..1500u64 {
            f.engine
                .apply_update(&f.session, i * 2 + 1, UpdateOp::Insert(payload(7)))
                .unwrap();
        }
        f.engine
            .apply_update(&f.session, 100, UpdateOp::Delete)
            .unwrap();
        let before = scan_keys(&f, 0, u64::MAX);
        let report = f.engine.migrate(&f.session).unwrap();
        assert!(report.runs_migrated > 0);
        assert_eq!(f.engine.run_count(), 0, "runs deleted after migration");
        let after = scan_keys(&f, 0, u64::MAX);
        // Buffered (unflushed) updates still overlay correctly.
        assert_eq!(before, after, "migration must not change query results");
        assert!(!after.contains(&100));
    }

    #[test]
    fn scan_during_migration_window_is_correct() {
        // A scan opened *after* migration's timestamp sees a mix of
        // migrated pages and still-live runs; page timestamps prevent
        // double-application.
        let f = fixture(300);
        for i in 0..900u64 {
            f.engine
                .apply_update(&f.session, i * 2 + 1, UpdateOp::Insert(payload(3)))
                .unwrap();
        }
        let expect = scan_keys(&f, 0, u64::MAX);
        f.engine.migrate(&f.session).unwrap();
        let got = scan_keys(&f, 0, u64::MAX);
        assert_eq!(expect, got);
        // Apply the same logical updates again: idempotence of replace.
        for i in 0..900u64 {
            f.engine
                .apply_update(&f.session, i * 2 + 1, UpdateOp::Replace(payload(3)))
                .unwrap();
        }
        let again = scan_keys(&f, 0, u64::MAX);
        assert_eq!(expect, again);
    }

    #[test]
    fn small_range_scans_after_many_updates() {
        let f = fixture(5000);
        for i in 0..4000u64 {
            f.engine
                .apply_update(
                    &f.session,
                    ((i * 37) % 10000) | 1,
                    UpdateOp::Insert(payload(i as u32)),
                )
                .unwrap();
        }
        let keys = scan_keys(&f, 5000, 5100);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert!(keys.iter().all(|&k| (5000..=5100).contains(&k)));
        // All even keys in range must be present.
        for k in (5000..=5100).step_by(2) {
            assert!(keys.contains(&k), "missing base key {k}");
        }
    }

    #[test]
    fn crash_recovery_restores_buffer_and_runs() {
        let clock = SimClock::new();
        let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let wal_dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let heap = Arc::new(TableHeap::new(disk.clone(), HeapConfig::default()));
        let session = SessionHandle::fresh(clock.clone());
        let engine = MasmEngine::new(
            heap,
            ssd.clone(),
            wal_dev.clone(),
            schema(),
            MasmConfig::small_for_tests(),
        )
        .unwrap();
        engine
            .load_table(
                &session,
                (0..500u64).map(|i| Record::new(i * 2, payload(i as u32))),
                1.0,
            )
            .unwrap();
        for i in 0..1200u64 {
            engine
                .apply_update(&session, i * 2 + 1, UpdateOp::Insert(payload(5)))
                .unwrap();
        }
        let expect = engine
            .begin_scan(session.clone(), 0, u64::MAX)
            .unwrap()
            .map(|r| r.key)
            .collect::<Vec<_>>();
        let buffered = engine.buffered_updates();
        let runs = engine.run_count();
        assert!(buffered > 0 && runs > 0, "need both tiers for the test");

        // "Crash": drop the engine; devices survive. Rebuild a fresh heap
        // handle over the same disk device (metadata comes from the WAL).
        drop(engine);
        let heap2 = Arc::new(TableHeap::new(disk, HeapConfig::default()));
        let (engine2, report) =
            MasmEngine::recover(heap2, ssd, wal_dev, schema(), MasmConfig::small_for_tests())
                .unwrap();
        assert_eq!(report.updates_recovered as usize, buffered);
        assert_eq!(report.runs_recovered, runs);
        assert!(!report.redid_migration);
        let got: Vec<Key> = engine2
            .begin_scan(session, 0, u64::MAX)
            .unwrap()
            .map(|r| r.key)
            .collect();
        assert_eq!(expect, got, "post-recovery scans see all updates");
    }

    #[test]
    fn crash_during_migration_is_redone() {
        let clock = SimClock::new();
        let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let wal_dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let heap = Arc::new(TableHeap::new(disk.clone(), HeapConfig::default()));
        let session = SessionHandle::fresh(clock.clone());
        let engine = MasmEngine::new(
            heap,
            ssd.clone(),
            wal_dev.clone(),
            schema(),
            MasmConfig::small_for_tests(),
        )
        .unwrap();
        engine
            .load_table(
                &session,
                (0..400u64).map(|i| Record::new(i * 2, payload(i as u32))),
                1.0,
            )
            .unwrap();
        for i in 0..900u64 {
            engine
                .apply_update(&session, i * 2 + 1, UpdateOp::Insert(payload(9)))
                .unwrap();
        }
        let expect: Vec<Key> = engine
            .begin_scan(session.clone(), 0, u64::MAX)
            .unwrap()
            .map(|r| r.key)
            .collect();
        // Simulate a crash mid-migration: log MigrationBegin but stop.
        // (The state lock is dropped before the WAL append — holding it
        // across device I/O trips the lock-discipline debug assert.)
        let ids: Vec<u64> = {
            let st = engine.state.lock();
            st.runs.runs().iter().map(|r| r.id).collect()
        };
        engine
            .wal
            .append(
                &session,
                &WalRecord::MigrationBegin {
                    ts: engine.oracle.next(),
                    run_ids: ids,
                },
            )
            .unwrap();
        drop(engine);
        let heap2 = Arc::new(TableHeap::new(disk, HeapConfig::default()));
        let (engine2, report) =
            MasmEngine::recover(heap2, ssd, wal_dev, schema(), MasmConfig::small_for_tests())
                .unwrap();
        assert!(report.redid_migration);
        assert_eq!(
            engine2.run_count(),
            0,
            "migration completed during recovery"
        );
        let got: Vec<Key> = engine2
            .begin_scan(session, 0, u64::MAX)
            .unwrap()
            .map(|r| r.key)
            .collect();
        assert_eq!(expect, got);
    }

    #[test]
    fn run_count_stays_within_query_page_budget_at_scan_setup() {
        let f = fixture(200);
        let budget = f.engine.config().query_pages() as usize;
        for i in 0..40_000u64 {
            f.engine
                .apply_update(&f.session, (i % 399) | 1, UpdateOp::Replace(payload(1)))
                .unwrap();
        }
        // Trigger scan setup (merges runs down to the budget).
        let _ = scan_keys(&f, 0, 10);
        assert!(
            f.engine.run_count() <= budget,
            "runs {} > budget {budget}",
            f.engine.run_count()
        );
    }

    #[test]
    fn migration_of_empty_engine_is_noop() {
        let f = fixture(50);
        let report = f.engine.migrate(&f.session).unwrap();
        assert_eq!(report, MigrationReport::default());
    }

    #[test]
    fn partial_migration_preserves_results_and_composes() {
        let f = fixture(600);
        for i in 0..1_200u64 {
            f.engine
                .apply_update(&f.session, i * 2 + 1, UpdateOp::Insert(payload(4)))
                .unwrap();
        }
        f.engine
            .apply_update(&f.session, 100, UpdateOp::Delete)
            .unwrap();
        let expect = scan_keys(&f, 0, u64::MAX);

        // Migrate only the first quarter of the key space.
        let r1 = f.engine.migrate_range(&f.session, 0, 300).unwrap();
        assert!(r1.updates_applied > 0);
        assert!(f.engine.run_count() > 0, "partial migration keeps runs");
        assert_eq!(expect, scan_keys(&f, 0, u64::MAX), "after first quarter");

        // Another partial slice, overlapping the first (idempotence via
        // page timestamps).
        f.engine.migrate_range(&f.session, 200, 700).unwrap();
        assert_eq!(expect, scan_keys(&f, 0, u64::MAX), "after overlap");

        // Full migration retires the runs and still agrees.
        f.engine.migrate(&f.session).unwrap();
        assert_eq!(f.engine.run_count(), 0);
        assert_eq!(expect, scan_keys(&f, 0, u64::MAX), "after full");
        assert!(!expect.contains(&100));
    }

    #[test]
    fn partial_migration_is_cheaper_than_full() {
        // The table must span several rewrite chunks for the comparison
        // to be about data volume rather than fixed costs.
        let n = 120_000u64;
        let run = |partial: bool| {
            let f = fixture(n);
            for i in 0..3_000u64 {
                f.engine
                    .apply_update(
                        &f.session,
                        ((i * 79) % (2 * n)) | 1,
                        UpdateOp::Insert(payload(1)),
                    )
                    .unwrap();
            }
            let start = f.session.now();
            if partial {
                f.engine.migrate_range(&f.session, 0, n / 5).unwrap();
            } else {
                f.engine.migrate(&f.session).unwrap();
            }
            f.session.now() - start
        };
        let partial_ns = run(true);
        let full_ns = run(false);
        assert!(
            partial_ns * 3 < full_ns,
            "10% range should cost far less: partial={partial_ns} full={full_ns}"
        );
    }

    #[test]
    fn compact_runs_collapses_duplicates() {
        let f = fixture(200);
        // Hammer a handful of keys so folding has teeth.
        for i in 0..6_000u64 {
            f.engine
                .apply_update(
                    &f.session,
                    (i % 10) * 2,
                    UpdateOp::Replace(payload(i as u32)),
                )
                .unwrap();
        }
        let runs_before = f.engine.run_count();
        assert!(runs_before >= 2, "need several runs");
        let bytes_before = f.engine.cached_bytes();
        let expect = scan_keys(&f, 0, u64::MAX);

        let report = f.engine.compact_runs(&f.session).unwrap();
        assert_eq!(report.inputs, runs_before);
        assert!(
            report.blocks_merged > 0,
            "hammered keys overlap across runs: {report:?}"
        );
        assert_eq!(f.engine.run_count(), 1, "single run remains");
        assert_eq!(f.engine.last_merge_report(), Some(report));
        assert!(
            f.engine.cached_bytes() < bytes_before / 4,
            "duplicates folded: {} -> {}",
            bytes_before,
            f.engine.cached_bytes()
        );
        assert_eq!(expect, scan_keys(&f, 0, u64::MAX));
        // The surviving values are the latest ones.
        let rec = f
            .engine
            .begin_scan(f.session.clone(), 0, 0)
            .unwrap()
            .next()
            .unwrap();
        assert_eq!(schema().get_u32(&rec.payload, 0), 5990);
    }

    #[test]
    fn compact_runs_on_few_runs_is_noop() {
        let f = fixture(50);
        assert_eq!(
            f.engine.compact_runs(&f.session).unwrap(),
            masm_storage::MergeReport::default()
        );
    }

    #[test]
    fn disjoint_compaction_decodes_nothing_and_writes_sequentially() {
        let f = fixture(100);
        // Four key-disjoint bands, each cut into its own run(s): the
        // merge plan must move every block verbatim.
        for band in 0..4u64 {
            for i in 0..400u64 {
                f.engine
                    .apply_update(
                        &f.session,
                        band * 100_000 + i * 2 + 1,
                        UpdateOp::Insert(payload(band as u32)),
                    )
                    .unwrap();
            }
            f.engine.flush_buffer(&f.session).unwrap();
        }
        let runs_before = f.engine.run_count();
        assert!(runs_before >= 4, "need several runs, got {runs_before}");
        let expect = scan_keys(&f, 0, u64::MAX);

        let before = f.engine.ssd().stats();
        let report = f.engine.compact_runs(&f.session).unwrap();
        let delta = f.engine.ssd().stats().delta(&before);

        assert_eq!(report.inputs, runs_before);
        assert_eq!(report.bytes_decoded, 0, "zero-decode: {report:?}");
        assert_eq!(report.blocks_merged, 0);
        assert!(report.blocks_moved > 0);
        assert_eq!(delta.random_writes, 0, "{delta:?}");
        assert_eq!(f.engine.run_count(), 1);
        assert_eq!(expect, scan_keys(&f, 0, u64::MAX), "results unchanged");

        // Metadata accounting follows the run set: one run's footprint
        // remains, and a full migration releases it.
        let st = f.engine.cache_stats();
        assert!(st.meta_bytes > 0, "{st:?}");
        f.engine.migrate(&f.session).unwrap();
        assert_eq!(f.engine.cache_stats().meta_bytes, 0);
        assert_eq!(expect, scan_keys(&f, 0, u64::MAX), "after migration");
    }

    #[test]
    fn overlapping_compaction_decodes_only_the_overlap() {
        let f = fixture(100);
        // Two runs sharing one key band plus disjoint tails.
        for i in 0..400u64 {
            f.engine
                .apply_update(&f.session, i * 2 + 1, UpdateOp::Insert(payload(1)))
                .unwrap();
        }
        f.engine.flush_buffer(&f.session).unwrap();
        for i in 300..700u64 {
            f.engine
                .apply_update(&f.session, i * 2 + 1, UpdateOp::Replace(payload(2)))
                .unwrap();
        }
        f.engine.flush_buffer(&f.session).unwrap();
        let expect = scan_keys(&f, 0, u64::MAX);

        let report = f.engine.compact_runs(&f.session).unwrap();
        assert!(report.blocks_merged > 0, "{report:?}");
        assert!(report.blocks_moved > 0, "disjoint tails move: {report:?}");
        // Only ~a quarter of the entries sit in the shared band, so the
        // decoded portion must stay well below the moved portion.
        assert!(
            report.bytes_decoded < report.bytes_moved,
            "only the overlap decodes: {report:?}"
        );
        assert_eq!(expect, scan_keys(&f, 0, u64::MAX));
        // The overlap band carries the later run's values.
        let rec = f
            .engine
            .begin_scan(f.session.clone(), 601, 601)
            .unwrap()
            .next()
            .unwrap();
        assert_eq!(schema().get_u32(&rec.payload, 0), 2);
    }

    #[test]
    fn get_consults_buffer_runs_bloom_and_heap() {
        let f = fixture(100); // even keys 0..200 hold payload(key/2)

        // Heap fallback: no cached updates at all.
        let rec = f.engine.get(&f.session, 40).unwrap().expect("heap hit");
        assert_eq!(schema().get_u32(&rec.payload, 0), 20);

        // Hit in a materialized run.
        f.engine
            .apply_update(&f.session, 43, UpdateOp::Insert(payload(900)))
            .unwrap();
        f.engine
            .apply_update(&f.session, 20, UpdateOp::Delete)
            .unwrap();
        f.engine.flush_buffer(&f.session).unwrap();
        assert!(f.engine.run_count() > 0 && f.engine.buffered_updates() == 0);
        let rec = f.engine.get(&f.session, 43).unwrap().expect("run hit");
        assert_eq!(schema().get_u32(&rec.payload, 0), 900);
        assert!(f.engine.get(&f.session, 20).unwrap().is_none(), "deleted");

        // Hit in the in-memory buffer (overrides the run's version).
        f.engine
            .apply_update(&f.session, 43, UpdateOp::Replace(payload(901)))
            .unwrap();
        assert!(f.engine.buffered_updates() > 0);
        let rec = f.engine.get(&f.session, 43).unwrap().expect("buffer hit");
        assert_eq!(schema().get_u32(&rec.payload, 0), 901);

        // Bloom negative: a key in no run costs zero SSD reads.
        let ssd_reads = f.engine.ssd().stats().read_ops;
        let miss = f.engine.get(&f.session, 45).unwrap();
        assert!(miss.is_none());
        assert_eq!(
            f.engine.ssd().stats().read_ops,
            ssd_reads,
            "bloom rejected the run without I/O"
        );

        // Agreement with the merged scan operator across all cases.
        for key in [20u64, 40, 43, 45, 44] {
            let via_scan: Vec<Record> = f
                .engine
                .begin_scan(f.session.clone(), key, key)
                .unwrap()
                .collect();
            let via_get = f.engine.get(&f.session, key).unwrap();
            assert_eq!(via_scan.first(), via_get.as_ref(), "key {key}");
        }
    }
}
