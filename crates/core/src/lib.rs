//! # masm-core — MaSM: Materialized Sort-Merge online updates
//!
//! This crate implements the paper's primary contribution: caching
//! incoming data-warehouse updates on an SSD and merging them into table
//! range scans on the fly, treating query processing with differential
//! updates as an outer join between main data (disk, key order) and
//! cached updates (SSD).
//!
//! The five design goals of §1.2 and how the modules meet them:
//!
//! 1. **Low query overhead with a small memory footprint** — updates are
//!    external-sorted: [`run`] materializes sorted runs of updates on the
//!    SSD in the block-run format of `masm-blockrun` (checksummed,
//!    codec-compressed blocks — [`config::CodecChoice`] — with per-block
//!    zone maps and a per-run bloom filter), so a range scan reads only
//!    the blocks overlapping its key range ([`run::RunScan`]), hot
//!    blocks are served from a
//!    shared block cache with zero SSD reads, and [`merge`] combines
//!    them with the scan in one pass.
//! 2. **No random SSD writes** — runs are written strictly sequentially
//!    ([`run::write_run`]); the `random_writes` counter of the simulated
//!    SSD stays zero, and tests assert it.
//! 3. **Few SSD writes per update** — [`algo`] implements MaSM-2M,
//!    MaSM-M and MaSM-αM run-management policies with the optimal `S`,
//!    `N` parameters of Theorems 3.2/3.3; [`theory`] has the closed
//!    forms the measurements are checked against.
//! 4. **Efficient in-place migration** — [`engine`] migrates runs back
//!    into the heap with a chunked copy-forward rewrite; timestamps on
//!    updates, pages, and queries decide whether a page has already
//!    absorbed an update, so concurrent queries and crash-redo are safe.
//! 5. **Correct ACID support** — [`txn`] provides timestamp ordering,
//!    snapshot-isolation private buffers, and lock-release visibility;
//!    [`wal`] (CRC-framed records, stable-tail group commit, torn-tail
//!    truncation) + [`engine::MasmEngine::recover`] rebuild the
//!    in-memory buffer (and only it) after a crash, and
//!    [`shard::ShardedEngine::recover`] replays every shard's WAL to
//!    one consistent cut under [`manifest::ShardManifest`] validation.

pub mod algo;
pub mod config;
pub mod engine;
pub mod error;
pub mod manifest;
pub mod membuf;
pub mod merge;
pub mod run;
pub mod secondary;
pub mod shard;
pub mod theory;
pub mod ts;
pub mod txn;
pub mod update;
pub mod view;
pub mod wal;
pub(crate) mod worker;

pub use config::{
    CachePolicy, CodecChoice, IndexGranularity, MasmConfig, ShardingConfig, SplitPolicy,
};
pub use engine::{MasmEngine, MergeScan, RecoveryReport};
// Re-exported so engine users consume `MasmEngine::stats()` without a
// direct masm-telemetry dependency.
pub use error::{MasmError, MasmResult};
pub use manifest::ShardManifest;
pub use masm_telemetry::{EngineStats, StatsDelta};
pub use shard::{ShardRouter, ShardedEngine, ShardedRecoveryReport, ShardedScan, ShardedStats};
pub use ts::TimestampOracle;
pub use txn::Transaction;
pub use update::{FieldPatch, UpdateOp, UpdateRecord};
