//! Well-formed update records and their merge semantics (§2.1, §3.2).
//!
//! An update record is `(timestamp, key, type, content)` where type is
//! one of insert / delete / modify / **replace** — replace "represents a
//! deletion merged with a later insertion with the same key". Well-formed
//! updates never read existing DW data, which is what keeps them off the
//! disk's critical path.

use masm_pagestore::{Key, Record, Schema};

use crate::ts::Timestamp;

/// A single-field patch inside a `modify` update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldPatch {
    /// Schema field index.
    pub field: u16,
    /// New raw value (must match the field width of the schema).
    pub value: Vec<u8>,
}

/// The operation part of an update record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert a new record with this payload.
    Insert(Vec<u8>),
    /// Delete the record with this key.
    Delete,
    /// Modify the given fields of the record.
    Modify(Vec<FieldPatch>),
    /// A deletion merged with a later insertion (§3.2).
    Replace(Vec<u8>),
}

impl UpdateOp {
    fn type_tag(&self) -> u8 {
        match self {
            UpdateOp::Insert(_) => 0,
            UpdateOp::Delete => 1,
            UpdateOp::Modify(_) => 2,
            UpdateOp::Replace(_) => 3,
        }
    }
}

/// A timestamped, keyed update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateRecord {
    /// Commit timestamp of the update.
    pub ts: Timestamp,
    /// Primary key / RID it applies to.
    pub key: Key,
    /// What to do.
    pub op: UpdateOp,
}

impl UpdateRecord {
    /// Construct an update record.
    pub fn new(ts: Timestamp, key: Key, op: UpdateOp) -> Self {
        UpdateRecord { ts, key, op }
    }

    /// Encoded size in bytes (for buffer and SSD-page accounting).
    pub fn encoded_len(&self) -> usize {
        let content = match &self.op {
            UpdateOp::Insert(p) | UpdateOp::Replace(p) => 2 + p.len(),
            UpdateOp::Delete => 0,
            UpdateOp::Modify(patches) => {
                1 + patches.iter().map(|p| 4 + p.value.len()).sum::<usize>()
            }
        };
        8 + 8 + 1 + content
    }

    /// Append the full `(ts, key, op)` encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ts.to_le_bytes());
        out.extend_from_slice(&self.key.to_le_bytes());
        self.encode_value_into(out);
    }

    /// Append only the operation part (tag + content) to `out` — the
    /// *value* of a block-run entry, whose key and timestamp are stored
    /// by the block format itself.
    pub fn encode_value_into(&self, out: &mut Vec<u8>) {
        out.push(self.op.type_tag());
        match &self.op {
            UpdateOp::Insert(p) | UpdateOp::Replace(p) => {
                out.extend_from_slice(&(p.len() as u16).to_le_bytes());
                out.extend_from_slice(p);
            }
            UpdateOp::Delete => {}
            UpdateOp::Modify(patches) => {
                debug_assert!(patches.len() <= u8::MAX as usize);
                out.push(patches.len() as u8);
                for p in patches {
                    out.extend_from_slice(&p.field.to_le_bytes());
                    out.extend_from_slice(&(p.value.len() as u16).to_le_bytes());
                    out.extend_from_slice(&p.value);
                }
            }
        }
    }

    /// The operation part (tag + content) as owned bytes.
    pub fn encode_value(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len() - 16);
        self.encode_value_into(&mut out);
        out
    }

    /// Decode an operation (tag + content) from the front of `buf`;
    /// returns it and the bytes consumed.
    fn decode_op(buf: &[u8]) -> Option<(UpdateOp, usize)> {
        let tag = *buf.first()?;
        let mut pos = 1usize;
        let op = match tag {
            0 | 3 => {
                if buf.len() < pos + 2 {
                    return None;
                }
                let len = u16::from_le_bytes(buf[pos..pos + 2].try_into().ok()?) as usize;
                pos += 2;
                if buf.len() < pos + len {
                    return None;
                }
                let payload = buf[pos..pos + len].to_vec();
                pos += len;
                if tag == 0 {
                    UpdateOp::Insert(payload)
                } else {
                    UpdateOp::Replace(payload)
                }
            }
            1 => UpdateOp::Delete,
            2 => {
                if buf.len() < pos + 1 {
                    return None;
                }
                let n = buf[pos] as usize;
                pos += 1;
                let mut patches = Vec::with_capacity(n);
                for _ in 0..n {
                    if buf.len() < pos + 4 {
                        return None;
                    }
                    let field = u16::from_le_bytes(buf[pos..pos + 2].try_into().ok()?);
                    let len = u16::from_le_bytes(buf[pos + 2..pos + 4].try_into().ok()?) as usize;
                    pos += 4;
                    if buf.len() < pos + len {
                        return None;
                    }
                    patches.push(FieldPatch {
                        field,
                        value: buf[pos..pos + len].to_vec(),
                    });
                    pos += len;
                }
                UpdateOp::Modify(patches)
            }
            _ => return None,
        };
        Some((op, pos))
    }

    /// Decode one record from the front of `buf`; returns it and the
    /// bytes consumed, or `None` if `buf` is truncated.
    pub fn decode(buf: &[u8]) -> Option<(UpdateRecord, usize)> {
        if buf.len() < 17 {
            return None;
        }
        let ts = Timestamp::from_le_bytes(buf[0..8].try_into().ok()?);
        let key = Key::from_le_bytes(buf[8..16].try_into().ok()?);
        let (op, used) = Self::decode_op(&buf[16..])?;
        Some((UpdateRecord { ts, key, op }, 16 + used))
    }

    /// Reassemble a record from block-run parts: the `(key, ts)` the
    /// block format stored plus the opaque value written by
    /// [`UpdateRecord::encode_value`]. Rejects trailing bytes.
    pub fn decode_value(key: Key, ts: Timestamp, value: &[u8]) -> Option<UpdateRecord> {
        let (op, used) = Self::decode_op(value)?;
        (used == value.len()).then_some(UpdateRecord { ts, key, op })
    }

    /// Apply this update to an optional existing record, producing the
    /// record the query should see (or `None` for a deletion).
    ///
    /// This is the per-record core of `Merge_data_updates`' outer join.
    pub fn apply_to(&self, base: Option<Record>, schema: &Schema) -> Option<Record> {
        match &self.op {
            UpdateOp::Insert(p) | UpdateOp::Replace(p) => Some(Record::new(self.key, p.clone())),
            UpdateOp::Delete => None,
            UpdateOp::Modify(patches) => base.map(|mut r| {
                for p in patches {
                    schema.set(&mut r.payload, p.field as usize, &p.value);
                }
                r
            }),
        }
    }

    /// Merge a later update into this one (same key, `self.ts <
    /// later.ts`). Produces the single update equivalent to applying both
    /// in order; the result carries the later timestamp (§3.2
    /// `Merge_updates`, §3.5 "Handling Skews").
    pub fn merge_with_later(&self, later: &UpdateRecord, schema: &Schema) -> UpdateRecord {
        debug_assert_eq!(self.key, later.key);
        debug_assert!(self.ts <= later.ts);
        let op = match (&self.op, &later.op) {
            // Later delete wins over anything.
            (_, UpdateOp::Delete) => UpdateOp::Delete,
            // A deletion followed by an insertion becomes a replace.
            (UpdateOp::Delete, UpdateOp::Insert(p)) => UpdateOp::Replace(p.clone()),
            // Insert/replace over anything else supersedes it entirely.
            (_, UpdateOp::Insert(p)) => UpdateOp::Replace(p.clone()),
            (_, UpdateOp::Replace(p)) => UpdateOp::Replace(p.clone()),
            // Modify after a full-payload op folds into the payload.
            (UpdateOp::Insert(p), UpdateOp::Modify(patches)) => {
                let mut payload = p.clone();
                for patch in patches {
                    schema.set(&mut payload, patch.field as usize, &patch.value);
                }
                UpdateOp::Insert(payload)
            }
            (UpdateOp::Replace(p), UpdateOp::Modify(patches)) => {
                let mut payload = p.clone();
                for patch in patches {
                    schema.set(&mut payload, patch.field as usize, &patch.value);
                }
                UpdateOp::Replace(payload)
            }
            // Modify of a deleted key is a no-op; the delete stands.
            (UpdateOp::Delete, UpdateOp::Modify(_)) => UpdateOp::Delete,
            // Modify ∘ modify: union of patches, later wins per field.
            (UpdateOp::Modify(m1), UpdateOp::Modify(m2)) => {
                let mut merged: Vec<FieldPatch> = m1.clone();
                for p2 in m2 {
                    if let Some(existing) = merged.iter_mut().find(|p| p.field == p2.field) {
                        existing.value = p2.value.clone();
                    } else {
                        merged.push(p2.clone());
                    }
                }
                merged.sort_by_key(|p| p.field);
                UpdateOp::Modify(merged)
            }
        };
        UpdateRecord {
            ts: later.ts,
            key: self.key,
            op,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masm_pagestore::{Field, FieldType};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", FieldType::U32),
            Field::new("b", FieldType::Bytes(4)),
        ])
    }

    fn payload(a: u32, b: &[u8; 4]) -> Vec<u8> {
        let s = schema();
        let mut p = s.empty_payload();
        s.set_u32(&mut p, 0, a);
        s.set(&mut p, 1, b);
        p
    }

    #[test]
    fn encode_decode_all_variants() {
        let cases = vec![
            UpdateRecord::new(1, 10, UpdateOp::Insert(payload(5, b"abcd"))),
            UpdateRecord::new(2, 11, UpdateOp::Delete),
            UpdateRecord::new(
                3,
                12,
                UpdateOp::Modify(vec![
                    FieldPatch {
                        field: 0,
                        value: 7u32.to_le_bytes().to_vec(),
                    },
                    FieldPatch {
                        field: 1,
                        value: b"wxyz".to_vec(),
                    },
                ]),
            ),
            UpdateRecord::new(4, 13, UpdateOp::Replace(payload(9, b"zzzz"))),
        ];
        let mut buf = Vec::new();
        for c in &cases {
            let before = buf.len();
            c.encode_into(&mut buf);
            assert_eq!(buf.len() - before, c.encoded_len());
        }
        let mut pos = 0;
        for c in &cases {
            let (got, used) = UpdateRecord::decode(&buf[pos..]).unwrap();
            assert_eq!(&got, c);
            pos += used;
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn value_codec_roundtrip() {
        let cases = vec![
            UpdateRecord::new(1, 10, UpdateOp::Insert(payload(5, b"abcd"))),
            UpdateRecord::new(2, 11, UpdateOp::Delete),
            UpdateRecord::new(
                3,
                12,
                UpdateOp::Modify(vec![FieldPatch {
                    field: 1,
                    value: b"wxyz".to_vec(),
                }]),
            ),
            UpdateRecord::new(4, 13, UpdateOp::Replace(payload(9, b"zzzz"))),
        ];
        for c in &cases {
            let value = c.encode_value();
            assert_eq!(value.len(), c.encoded_len() - 16);
            let back = UpdateRecord::decode_value(c.key, c.ts, &value).unwrap();
            assert_eq!(&back, c);
        }
        // Trailing bytes are rejected.
        let mut value = cases[1].encode_value();
        value.push(0);
        assert!(UpdateRecord::decode_value(11, 2, &value).is_none());
    }

    #[test]
    fn decode_truncated_returns_none() {
        let r = UpdateRecord::new(1, 2, UpdateOp::Insert(vec![1, 2, 3]));
        let mut buf = Vec::new();
        r.encode_into(&mut buf);
        for cut in [0, 5, 16, 18, buf.len() - 1] {
            assert!(UpdateRecord::decode(&buf[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn decode_bad_tag_returns_none() {
        let mut buf = vec![0u8; 17];
        buf[16] = 9;
        assert!(UpdateRecord::decode(&buf).is_none());
    }

    #[test]
    fn apply_insert_delete_modify() {
        let s = schema();
        let ins = UpdateRecord::new(1, 5, UpdateOp::Insert(payload(1, b"aaaa")));
        let got = ins.apply_to(None, &s).unwrap();
        assert_eq!(got.key, 5);
        assert_eq!(s.get_u32(&got.payload, 0), 1);

        let del = UpdateRecord::new(2, 5, UpdateOp::Delete);
        assert!(del.apply_to(Some(got.clone()), &s).is_none());

        let modify = UpdateRecord::new(
            3,
            5,
            UpdateOp::Modify(vec![FieldPatch {
                field: 0,
                value: 42u32.to_le_bytes().to_vec(),
            }]),
        );
        let patched = modify.apply_to(Some(got), &s).unwrap();
        assert_eq!(s.get_u32(&patched.payload, 0), 42);
        assert_eq!(s.get(&patched.payload, 1), b"aaaa");
        // Modify with no base record is a no-op.
        assert!(modify.apply_to(None, &s).is_none());
    }

    #[test]
    fn merge_delete_then_insert_is_replace() {
        let s = schema();
        let del = UpdateRecord::new(1, 9, UpdateOp::Delete);
        let ins = UpdateRecord::new(2, 9, UpdateOp::Insert(payload(3, b"bbbb")));
        let merged = del.merge_with_later(&ins, &s);
        assert_eq!(merged.ts, 2);
        assert!(matches!(merged.op, UpdateOp::Replace(_)));
    }

    #[test]
    fn merge_modify_chains_compose() {
        let s = schema();
        let m1 = UpdateRecord::new(
            1,
            9,
            UpdateOp::Modify(vec![FieldPatch {
                field: 0,
                value: 1u32.to_le_bytes().to_vec(),
            }]),
        );
        let m2 = UpdateRecord::new(
            2,
            9,
            UpdateOp::Modify(vec![
                FieldPatch {
                    field: 0,
                    value: 2u32.to_le_bytes().to_vec(),
                },
                FieldPatch {
                    field: 1,
                    value: b"qqqq".to_vec(),
                },
            ]),
        );
        let merged = m1.merge_with_later(&m2, &s);
        let base = Record::new(9, payload(0, b"0000"));
        let direct = m2
            .apply_to(m1.apply_to(Some(base.clone()), &s), &s)
            .unwrap();
        let via_merge = merged.apply_to(Some(base), &s).unwrap();
        assert_eq!(direct, via_merge);
    }

    #[test]
    fn merge_insert_then_modify_folds_payload() {
        let s = schema();
        let ins = UpdateRecord::new(1, 9, UpdateOp::Insert(payload(1, b"aaaa")));
        let m = UpdateRecord::new(
            2,
            9,
            UpdateOp::Modify(vec![FieldPatch {
                field: 1,
                value: b"zzzz".to_vec(),
            }]),
        );
        let merged = ins.merge_with_later(&m, &s);
        match &merged.op {
            UpdateOp::Insert(p) => {
                assert_eq!(s.get(p, 1), b"zzzz");
                assert_eq!(s.get_u32(p, 0), 1);
            }
            other => panic!("expected insert, got {other:?}"),
        }
    }

    #[test]
    fn merge_anything_then_delete_is_delete() {
        let s = schema();
        for earlier in [
            UpdateOp::Insert(payload(1, b"aaaa")),
            UpdateOp::Delete,
            UpdateOp::Modify(vec![]),
            UpdateOp::Replace(payload(2, b"bbbb")),
        ] {
            let e = UpdateRecord::new(1, 9, earlier);
            let d = UpdateRecord::new(2, 9, UpdateOp::Delete);
            assert_eq!(e.merge_with_later(&d, &s).op, UpdateOp::Delete);
        }
    }

    #[test]
    fn merge_equivalence_property_sampled() {
        // For every pair of op kinds, merging then applying must equal
        // applying in sequence, starting from an existing base record.
        let s = schema();
        let ops = vec![
            UpdateOp::Insert(payload(10, b"iiii")),
            UpdateOp::Delete,
            UpdateOp::Modify(vec![FieldPatch {
                field: 0,
                value: 77u32.to_le_bytes().to_vec(),
            }]),
            UpdateOp::Replace(payload(20, b"rrrr")),
        ];
        for o1 in &ops {
            for o2 in &ops {
                let u1 = UpdateRecord::new(1, 9, o1.clone());
                let u2 = UpdateRecord::new(2, 9, o2.clone());
                let merged = u1.merge_with_later(&u2, &s);
                for base in [Some(Record::new(9, payload(0, b"base"))), None] {
                    let direct = u2.apply_to(u1.apply_to(base.clone(), &s), &s);
                    let via = merged.apply_to(base, &s);
                    assert_eq!(direct, via, "ops {o1:?} then {o2:?}");
                }
            }
        }
    }
}
