//! Transaction support (§3.6).
//!
//! MaSM's timestamps already serialize *individual* queries and updates.
//! For multi-statement transactions the paper describes two schemes,
//! both implemented here:
//!
//! * **Snapshot isolation** — [`Transaction`]: reads run at the
//!   transaction's start timestamp; writes stage in a small private
//!   buffer that is overlaid on the transaction's own scans; commit is
//!   first-committer-wins and stamps every private write with one commit
//!   timestamp before appending it to the global update buffer.
//! * **Locking (e.g. two-phase locking)** — [`LockManager`] +
//!   [`LockingTransaction`]: an update becomes globally visible only
//!   when its exclusive lock is released, at which point it receives the
//!   then-current timestamp; queries use their normal start timestamps,
//!   so two conflicting transactions serialized by the locks see each
//!   other's effects in lock order.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use masm_pagestore::Key;
use masm_storage::SessionHandle;

use crate::engine::{MasmEngine, MergeScan};
use crate::error::MasmResult;
use crate::ts::Timestamp;
use crate::update::{UpdateOp, UpdateRecord};

/// A snapshot-isolation transaction.
pub struct Transaction {
    engine: Arc<MasmEngine>,
    start_ts: Timestamp,
    writes: Vec<(Key, UpdateOp)>,
}

impl Transaction {
    /// Begin a transaction; reads will see the database as of now.
    pub fn begin(engine: &Arc<MasmEngine>) -> Self {
        Transaction {
            start_ts: engine.oracle().next(),
            engine: Arc::clone(engine),
            writes: Vec::new(),
        }
    }

    /// The transaction's snapshot timestamp.
    pub fn start_ts(&self) -> Timestamp {
        self.start_ts
    }

    /// Stage a write in the private buffer.
    pub fn write(&mut self, key: Key, op: UpdateOp) {
        self.writes.push((key, op));
    }

    /// Number of staged writes.
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }

    /// Open a range scan that sees the snapshot **plus** this
    /// transaction's own staged writes (the private-buffer `Mem_scan` of
    /// §3.6).
    pub fn scan(&self, session: SessionHandle, begin: Key, end: Key) -> MasmResult<MergeScan> {
        let private: Vec<UpdateRecord> = self
            .writes
            .iter()
            .map(|(k, op)| UpdateRecord::new(self.start_ts, *k, op.clone()))
            .collect();
        self.engine
            .begin_scan_at(session, begin, end, Some(self.start_ts), private)
    }

    /// Commit: first-committer-wins validation, then all writes receive
    /// one commit timestamp and enter the global update buffer.
    pub fn commit(self, session: &SessionHandle) -> MasmResult<Timestamp> {
        self.engine
            .commit_writes(session, self.start_ts, self.writes)
    }

    /// Abort: drop the private buffer.
    pub fn abort(self) {}
}

/// A minimal exclusive-lock table for demonstrating lock-based schemes.
#[derive(Default)]
pub struct LockManager {
    held: Mutex<HashSet<Key>>,
    released: Condvar,
}

impl LockManager {
    /// Fresh lock manager.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Acquire an exclusive lock on `key`, blocking until available.
    pub fn lock_exclusive(&self, key: Key) {
        let mut held = self.held.lock();
        while held.contains(&key) {
            self.released.wait(&mut held);
        }
        held.insert(key);
    }

    /// Try to acquire without blocking.
    pub fn try_lock_exclusive(&self, key: Key) -> bool {
        self.held.lock().insert(key)
    }

    /// Release a lock.
    pub fn unlock(&self, key: Key) {
        self.held.lock().remove(&key);
        self.released.notify_all();
    }
}

/// A two-phase-locking transaction: writes stay in a private buffer and
/// become globally visible (with fresh timestamps) at lock release.
pub struct LockingTransaction {
    engine: Arc<MasmEngine>,
    locks: Arc<LockManager>,
    held: Vec<Key>,
    pending: HashMap<Key, UpdateOp>,
}

impl LockingTransaction {
    /// Begin a locking transaction.
    pub fn begin(engine: &Arc<MasmEngine>, locks: &Arc<LockManager>) -> Self {
        LockingTransaction {
            engine: Arc::clone(engine),
            locks: Arc::clone(locks),
            held: Vec::new(),
            pending: HashMap::new(),
        }
    }

    /// Write under an exclusive lock (acquired if not already held).
    pub fn write(&mut self, key: Key, op: UpdateOp) {
        if !self.held.contains(&key) {
            self.locks.lock_exclusive(key);
            self.held.push(key);
        }
        // Later writes to the same key supersede earlier ones within the
        // transaction (it holds the lock throughout).
        self.pending.insert(key, op);
    }

    /// Commit: publish each pending write with the then-current
    /// timestamp, then release all locks (shrinking phase).
    pub fn commit(mut self, session: &SessionHandle) -> MasmResult<Timestamp> {
        let mut last_ts = 0;
        for (key, op) in std::mem::take(&mut self.pending) {
            last_ts = self.engine.apply_update(session, key, op)?;
        }
        for key in std::mem::take(&mut self.held) {
            self.locks.unlock(key);
        }
        Ok(last_ts)
    }

    /// Abort: discard writes, release locks.
    pub fn abort(mut self) {
        self.pending.clear();
        for key in std::mem::take(&mut self.held) {
            self.locks.unlock(key);
        }
    }
}

impl Drop for LockingTransaction {
    fn drop(&mut self) {
        for key in std::mem::take(&mut self.held) {
            self.locks.unlock(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MasmConfig;
    use crate::error::MasmError;
    use masm_pagestore::{HeapConfig, Record, Schema, TableHeap};
    use masm_storage::{DeviceProfile, SimClock, SimDevice};

    fn schema() -> Schema {
        Schema::synthetic_100b()
    }

    fn payload(v: u32) -> Vec<u8> {
        let s = schema();
        let mut p = s.empty_payload();
        s.set_u32(&mut p, 0, v);
        p
    }

    fn setup() -> (Arc<MasmEngine>, SessionHandle) {
        let clock = SimClock::new();
        let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let wal = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
        let engine =
            MasmEngine::new(heap, ssd, wal, schema(), MasmConfig::small_for_tests()).unwrap();
        let session = SessionHandle::fresh(clock);
        engine
            .load_table(
                &session,
                (0..100u64).map(|i| Record::new(i * 2, payload(i as u32))),
                1.0,
            )
            .unwrap();
        (engine, session)
    }

    #[test]
    fn snapshot_reads_ignore_later_commits() {
        let (engine, session) = setup();
        let txn = Transaction::begin(&engine);
        engine
            .apply_update(&session, 1, UpdateOp::Insert(payload(1)))
            .unwrap();
        let keys: Vec<Key> = txn
            .scan(session.clone(), 0, 10)
            .unwrap()
            .map(|r| r.key)
            .collect();
        assert!(!keys.contains(&1), "post-snapshot insert invisible");
        // A fresh scan outside the txn sees it.
        let keys: Vec<Key> = engine
            .begin_scan(session, 0, 10)
            .unwrap()
            .map(|r| r.key)
            .collect();
        assert!(keys.contains(&1));
    }

    #[test]
    fn transaction_sees_its_own_writes() {
        let (engine, session) = setup();
        let mut txn = Transaction::begin(&engine);
        txn.write(7, UpdateOp::Insert(payload(70)));
        txn.write(4, UpdateOp::Delete);
        let keys: Vec<Key> = txn
            .scan(session.clone(), 0, 10)
            .unwrap()
            .map(|r| r.key)
            .collect();
        assert!(keys.contains(&7), "own insert visible");
        assert!(!keys.contains(&4), "own delete visible");
        // Not yet visible outside.
        let outside: Vec<Key> = engine
            .begin_scan(session, 0, 10)
            .unwrap()
            .map(|r| r.key)
            .collect();
        assert!(!outside.contains(&7));
        assert!(outside.contains(&4));
    }

    #[test]
    fn commit_publishes_atomically() {
        let (engine, session) = setup();
        let mut txn = Transaction::begin(&engine);
        txn.write(7, UpdateOp::Insert(payload(70)));
        txn.write(9, UpdateOp::Insert(payload(90)));
        let ts = txn.commit(&session).unwrap();
        assert!(ts > 0);
        let keys: Vec<Key> = engine
            .begin_scan(session, 0, 10)
            .unwrap()
            .map(|r| r.key)
            .collect();
        assert!(keys.contains(&7) && keys.contains(&9));
    }

    #[test]
    fn first_committer_wins() {
        let (engine, session) = setup();
        let mut t1 = Transaction::begin(&engine);
        let mut t2 = Transaction::begin(&engine);
        t1.write(50, UpdateOp::Insert(payload(1)));
        t2.write(50, UpdateOp::Insert(payload(2)));
        t1.commit(&session).unwrap();
        let err = t2.commit(&session).unwrap_err();
        assert!(matches!(err, MasmError::Conflict { key: 50 }));
    }

    #[test]
    fn disjoint_writes_both_commit() {
        let (engine, session) = setup();
        let mut t1 = Transaction::begin(&engine);
        let mut t2 = Transaction::begin(&engine);
        t1.write(51, UpdateOp::Insert(payload(1)));
        t2.write(53, UpdateOp::Insert(payload(2)));
        t1.commit(&session).unwrap();
        t2.commit(&session).unwrap();
    }

    #[test]
    fn abort_discards_writes() {
        let (engine, session) = setup();
        let mut txn = Transaction::begin(&engine);
        txn.write(7, UpdateOp::Insert(payload(1)));
        txn.abort();
        let keys: Vec<Key> = engine
            .begin_scan(session, 0, 10)
            .unwrap()
            .map(|r| r.key)
            .collect();
        assert!(!keys.contains(&7));
    }

    #[test]
    fn lock_manager_excludes() {
        let lm = LockManager::new();
        lm.lock_exclusive(5);
        assert!(!lm.try_lock_exclusive(5));
        assert!(lm.try_lock_exclusive(6));
        lm.unlock(5);
        assert!(lm.try_lock_exclusive(5));
    }

    #[test]
    fn locking_transactions_serialize_conflicts() {
        let (engine, session) = setup();
        let locks = LockManager::new();
        let mut a = LockingTransaction::begin(&engine, &locks);
        a.write(60, UpdateOp::Insert(payload(1)));
        // B would block on key 60; run it in a thread.
        let engine2 = Arc::clone(&engine);
        let locks2 = Arc::clone(&locks);
        let session2 = session.clone();
        let handle = std::thread::spawn(move || {
            let mut b = LockingTransaction::begin(&engine2, &locks2);
            b.write(60, UpdateOp::Insert(payload(2)));
            b.commit(&session2).unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let ts_a = a.commit(&session).unwrap();
        let ts_b = handle.join().unwrap();
        assert!(ts_b > ts_a, "B serialized after A by the lock");
        // B's value wins.
        let rec = engine.begin_scan(session, 60, 60).unwrap().next().unwrap();
        assert_eq!(schema().get_u32(&rec.payload, 0), 2);
    }

    #[test]
    fn drop_releases_locks() {
        let (engine, _session) = setup();
        let locks = LockManager::new();
        {
            let mut t = LockingTransaction::begin(&engine, &locks);
            t.write(70, UpdateOp::Delete);
            // dropped without commit
        }
        assert!(locks.try_lock_exclusive(70), "lock released on drop");
    }
}
