//! Background maintenance workers: the engine's flush / compaction /
//! migration execution pool.
//!
//! With `background_workers > 0` the engine never pays a flush or merge
//! inline on the ingest or scan path. Instead it *seals* the full
//! in-memory buffer into an immutable batch, enqueues a job here, and
//! returns; a pool thread materializes the run off the critical path.
//! Callers only ever throttle through the bounded-backlog backpressure
//! gate ([`WorkerPool::wait_for_space`]) — ingest degrades to a wait,
//! never to inline I/O.
//!
//! One pool serves every shard of a sharded engine: jobs are tagged
//! with their shard, each shard has its own dedup flags and event
//! counters (registered into that shard's metric registry), and the
//! backlog/queue gauges stay pool-global.
//!
//! Scheduling rules:
//!
//! * **Flush** jobs carry the id of one sealed batch. They are the only
//!   job kind that can exist more than once per shard in the queue.
//! * **Compact** and **Migrate** are deduplicated *per shard*: at most
//!   one of each queued at a time (re-requested after completion if
//!   still needed by [`crate::engine::MasmEngine`]'s maintenance
//!   check).
//! * **Migrations are staggered**: at most `max_concurrent_migrations`
//!   migrate jobs run at once across all shards. A blocked migrate job
//!   stays in the queue and workers take the next runnable job past it,
//!   so flushes and compactions never starve behind a waiting
//!   migration — and N shards never multiply the scan tail latency by
//!   N concurrent migrations.
//! * A failing job retries up to [`MAX_JOB_ATTEMPTS`] times; a flush
//!   that exhausts its retries is *abandoned* — the engine moves the
//!   sealed batch's updates back into the in-memory buffer so no data
//!   is lost and queries keep seeing it (the WAL already holds every
//!   update). Workers never wedge on a poisoned job.
//! * Shutdown is **drain-then-exit**: queued jobs still run after
//!   [`WorkerPool::shutdown`] is signalled; threads exit once the queue
//!   is empty. [`WorkerHandle::join`] gives deterministic teardown.
//!
//! The pool's own mutex is a [`TrackedMutex`]: holding it across device
//! I/O is a debug-mode panic, same as the engine state lock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;

use parking_lot::Condvar;

use masm_storage::{Ns, TrackedMutex};
use masm_telemetry::{Counter, Gauge, Registry, Unit};

use crate::engine::MasmEngine;

/// Retry budget per job: a job that fails this many times is abandoned
/// (flushes return their batch to the buffer; compactions and
/// migrations are simply dropped and re-requested by the next
/// maintenance check).
pub(crate) const MAX_JOB_ATTEMPTS: u32 = 3;

/// One unit of background work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JobKind {
    /// Materialize sealed batch `batch_id` as a 1-pass run.
    Flush { batch_id: u64 },
    /// Merge 1-pass runs down to the query-page budget.
    Compact,
    /// Migrate cached updates back into the main data.
    Migrate,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Job {
    /// Which shard's engine executes this job (0 for an unsharded
    /// engine).
    pub shard: usize,
    pub kind: JobKind,
    pub attempts: u32,
    /// Virtual time the job was requested. The worker session starts
    /// here, not at the global clock: background I/O then *overlaps*
    /// the actors that kept working after requesting it (the device
    /// busy-horizon still serializes same-device access). Starting at
    /// the global clock instead would push every shard's device horizon
    /// to the system-wide maximum on each job, serializing independent
    /// shards through the clock.
    pub at: Ns,
}

struct PoolState {
    queue: VecDeque<Job>,
    /// Bytes of sealed batches whose flush has not yet completed (the
    /// backpressure signal; includes batches currently being flushed).
    backlog_bytes: u64,
    /// Per-shard dedup flags (indexed by `Job::shard`).
    compact_queued: Vec<bool>,
    migrate_queued: Vec<bool>,
    /// Migrate jobs currently executing (staggering counter).
    migrations_inflight: usize,
    shutdown: bool,
}

/// Registry-backed monotonic event counters, incremented by the workers
/// themselves at the point each event happens (satellite rule: the
/// subsystem pushes its own metrics; the engine only reads them). One
/// set per shard, registered into that shard's registry, so per-shard
/// `EngineStats` rows sum to the pool's true totals.
pub(crate) struct WorkerCounters {
    pub jobs_completed: Arc<Counter>,
    pub jobs_retried: Arc<Counter>,
    pub jobs_failed: Arc<Counter>,
    pub flushes: Arc<Counter>,
    pub merges: Arc<Counter>,
    pub migrations: Arc<Counter>,
}

impl WorkerCounters {
    fn new(registry: &Registry) -> Self {
        let c = |name, help| registry.counter("worker", name, Unit::Ops, help);
        WorkerCounters {
            jobs_completed: c("jobs_completed", "background jobs that succeeded"),
            jobs_retried: c("jobs_retried", "background jobs re-queued after an error"),
            jobs_failed: c("jobs_failed", "background jobs abandoned after max retries"),
            flushes: c("flushes", "1-pass runs materialized by workers"),
            merges: c("merges", "2-pass merges executed by workers"),
            migrations: c("migrations", "migrations executed by workers"),
        }
    }
}

/// Shared state of the worker pool. The engine holds it in a
/// [`WorkerHandle`]; each worker thread holds its own `Arc`.
pub(crate) struct WorkerPool {
    state: TrackedMutex<PoolState>,
    /// Signalled when work is enqueued, a migration slot frees up, or
    /// shutdown is requested.
    work: Condvar,
    /// Signalled when backlog bytes drop (flush completed or abandoned).
    space: Condvar,
    /// Per-shard event counters (indexed by `Job::shard`).
    counters: Vec<WorkerCounters>,
    /// Gauge mirrors, owned by the pool and updated at every
    /// transition. Registered in the first shard's registry; every
    /// shard's `stats()` reads the same pool-global levels.
    queue_depth: Arc<Gauge>,
    backlog_gauge: Arc<Gauge>,
    pub threads: usize,
    backlog_limit: u64,
    /// At most this many migrate jobs execute concurrently.
    migration_cap: usize,
}

impl WorkerPool {
    /// A pool serving one shard per registry in `registries` (a single
    /// registry for an unsharded engine). Pool-global gauges register
    /// into `registries[0]`.
    pub fn new(
        threads: usize,
        backlog_limit: u64,
        migration_cap: usize,
        registries: &[&Registry],
    ) -> Arc<Self> {
        assert!(!registries.is_empty(), "pool needs at least one shard");
        let shards = registries.len();
        let g = |name, unit, help| registries[0].gauge("worker", name, unit, help);
        let pool = WorkerPool {
            state: TrackedMutex::new(PoolState {
                queue: VecDeque::new(),
                backlog_bytes: 0,
                compact_queued: vec![false; shards],
                migrate_queued: vec![false; shards],
                migrations_inflight: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            counters: registries.iter().map(|r| WorkerCounters::new(r)).collect(),
            queue_depth: g("queue_depth", Unit::Ops, "jobs waiting in the worker queue"),
            backlog_gauge: g(
                "backlog_bytes",
                Unit::Bytes,
                "sealed batch bytes awaiting background flush",
            ),
            threads,
            backlog_limit,
            migration_cap: migration_cap.max(1),
        };
        for r in registries {
            r.gauge("worker", "threads", Unit::Ops, "background worker threads")
                .set(threads as u64);
        }
        Arc::new(pool)
    }

    /// Shard `shard`'s event counters.
    pub fn counters(&self, shard: usize) -> &WorkerCounters {
        &self.counters[shard]
    }

    /// Enqueue a flush for shard `shard`'s sealed batch `batch_id`
    /// holding `bytes` of updates, requested at virtual time `at`.
    /// Returns immediately; backpressure is a separate call so the
    /// engine can release its state lock first.
    pub fn enqueue_flush(&self, shard: usize, batch_id: u64, bytes: u64, at: Ns) {
        let mut st = self.state.lock();
        st.backlog_bytes += bytes;
        st.queue.push_back(Job {
            shard,
            kind: JobKind::Flush { batch_id },
            attempts: 0,
            at,
        });
        self.queue_depth.set(st.queue.len() as u64);
        self.backlog_gauge.set(st.backlog_bytes);
        drop(st);
        self.work.notify_one();
    }

    /// Enqueue a compaction pass for `shard` unless one is already
    /// queued there.
    pub fn enqueue_compact(&self, shard: usize, at: Ns) {
        self.enqueue_dedup(shard, JobKind::Compact, at);
    }

    /// Enqueue a migration for `shard` unless one is already queued
    /// there.
    pub fn enqueue_migrate(&self, shard: usize, at: Ns) {
        self.enqueue_dedup(shard, JobKind::Migrate, at);
    }

    fn enqueue_dedup(&self, shard: usize, kind: JobKind, at: Ns) {
        let mut st = self.state.lock();
        // Maintenance requested after shutdown can never run — drop it
        // rather than strand it in the queue (unlike flushes, compact /
        // migrate carry no data and are re-requested whenever needed).
        if st.shutdown {
            return;
        }
        let flag = match kind {
            JobKind::Compact => &mut st.compact_queued[shard],
            JobKind::Migrate => &mut st.migrate_queued[shard],
            JobKind::Flush { .. } => unreachable!("flush jobs are not deduplicated"),
        };
        if std::mem::replace(flag, true) {
            return;
        }
        st.queue.push_back(Job {
            shard,
            kind,
            attempts: 0,
            at,
        });
        self.queue_depth.set(st.queue.len() as u64);
        drop(st);
        self.work.notify_one();
    }

    /// Re-queue a failed job for another attempt.
    pub fn requeue(&self, job: Job) {
        let mut st = self.state.lock();
        match job.kind {
            JobKind::Compact => st.compact_queued[job.shard] = true,
            JobKind::Migrate => st.migrate_queued[job.shard] = true,
            JobKind::Flush { .. } => {}
        }
        st.queue.push_back(job);
        self.queue_depth.set(st.queue.len() as u64);
        drop(st);
        self.work.notify_one();
    }

    /// A migrate job finished executing (success *or* failure): free
    /// its staggering slot and wake a worker that may be parked behind
    /// a blocked migrate job.
    pub fn migration_finished(&self) {
        let mut st = self.state.lock();
        st.migrations_inflight = st.migrations_inflight.saturating_sub(1);
        drop(st);
        self.work.notify_all();
    }

    /// Drop `bytes` from the flush backlog (flush completed or batch
    /// abandoned) and wake any ingest thread throttled on it.
    pub fn release_backlog(&self, bytes: u64) {
        let mut st = self.state.lock();
        st.backlog_bytes = st.backlog_bytes.saturating_sub(bytes);
        self.backlog_gauge.set(st.backlog_bytes);
        drop(st);
        self.space.notify_all();
    }

    /// The ingest backpressure gate: block while the un-flushed backlog
    /// exceeds the configured limit. Returns immediately on shutdown so
    /// a tearing-down engine cannot strand an ingest thread. The return
    /// value reports whether the caller actually stalled (waited at
    /// least once), so tracing can record a `backpressure.stall` span
    /// only for real throttle events.
    pub fn wait_for_space(&self) -> bool {
        let mut st = self.state.lock();
        let mut stalled = false;
        while st.backlog_bytes > self.backlog_limit && !st.shutdown {
            stalled = true;
            self.space.wait(st.inner_mut());
        }
        stalled
    }

    /// Current (queue depth, backlog bytes).
    pub fn depths(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.queue.len() as u64, st.backlog_bytes)
    }

    /// Whether shutdown has been signalled. The engine reverts to the
    /// inline flush/merge paths once this is true: a job enqueued past
    /// shutdown would never run.
    pub fn is_shutdown(&self) -> bool {
        self.state.lock().shutdown
    }

    /// Signal shutdown: workers drain the queue, then exit.
    pub fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.work.notify_all();
        self.space.notify_all();
    }

    /// Worker side: block for the next *runnable* job. Migrate jobs are
    /// skipped (left in the queue) while `migration_cap` migrations are
    /// already executing; a taken migrate job charges the staggering
    /// counter, released by [`WorkerPool::migration_finished`]. `None`
    /// means the queue is drained and shutdown was requested — exit the
    /// thread.
    fn next_job(&self) -> Option<Job> {
        let mut st = self.state.lock();
        loop {
            let runnable = st.queue.iter().position(|j| {
                !matches!(j.kind, JobKind::Migrate) || st.migrations_inflight < self.migration_cap
            });
            if let Some(i) = runnable {
                let job = st.queue.remove(i).expect("indexed job present");
                match job.kind {
                    JobKind::Compact => st.compact_queued[job.shard] = false,
                    JobKind::Migrate => {
                        st.migrate_queued[job.shard] = false;
                        st.migrations_inflight += 1;
                    }
                    JobKind::Flush { .. } => {}
                }
                self.queue_depth.set(st.queue.len() as u64);
                return Some(job);
            }
            if st.shutdown && st.queue.is_empty() {
                return None;
            }
            // Queue empty, or it holds only migrate jobs blocked on the
            // stagger cap — an in-flight migration's completion rings
            // `work`. During shutdown the drain still completes: blocked
            // migrations imply migrations_inflight > 0, so a wake-up is
            // always coming.
            self.work.wait(st.inner_mut());
        }
    }
}

struct HandleInner {
    pool: Arc<WorkerPool>,
    joins: std::sync::Mutex<Vec<JoinHandle<()>>>,
    joined: AtomicBool,
}

impl Drop for HandleInner {
    fn drop(&mut self) {
        // Signal only — never join from Drop (the last engine Arc may be
        // dropped *on* a worker thread, which cannot join itself).
        self.pool.shutdown();
    }
}

/// The engines' ownership handle: pool plus joinable thread handles.
/// Cloneable so every shard of a sharded engine holds the same handle;
/// shutdown is signalled when the last clone drops, and
/// [`WorkerHandle::join`] is idempotent across clones.
#[derive(Clone)]
pub(crate) struct WorkerHandle {
    inner: Arc<HandleInner>,
}

impl WorkerHandle {
    /// Spawn `pool.threads` workers over weak references to `engines`
    /// (indexed by `Job::shard`). The weak links break the `Arc` cycle:
    /// dropped engines stop producing jobs, workers fail the upgrade
    /// and exit.
    pub fn spawn(engines: &[Arc<MasmEngine>], pool: Arc<WorkerPool>) -> Self {
        let threads = pool.threads;
        let mut joins = Vec::with_capacity(threads);
        for i in 0..threads {
            let weaks: Vec<Weak<MasmEngine>> = engines.iter().map(Arc::downgrade).collect();
            let pool = Arc::clone(&pool);
            joins.push(
                std::thread::Builder::new()
                    .name(format!("masm-worker-{i}"))
                    .spawn(move || worker_loop(weaks, pool))
                    .expect("spawn worker thread"),
            );
        }
        WorkerHandle {
            inner: Arc::new(HandleInner {
                pool,
                joins: std::sync::Mutex::new(joins),
                joined: AtomicBool::new(false),
            }),
        }
    }

    /// The shared pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.inner.pool
    }

    /// Signal shutdown and join every worker (idempotent, including
    /// across clones of this handle).
    pub fn join(&self) {
        self.inner.pool.shutdown();
        if self.inner.joined.swap(true, Ordering::AcqRel) {
            return;
        }
        let handles = std::mem::take(&mut *self.inner.joins.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(engines: Vec<Weak<MasmEngine>>, pool: Arc<WorkerPool>) {
    while let Some(job) = pool.next_job() {
        let Some(engine) = engines.get(job.shard).and_then(Weak::upgrade) else {
            // Engines are torn down together; a failed upgrade means
            // the whole set is going away. Release any claimed
            // migration slot so sibling workers are not starved while
            // they drain.
            if matches!(job.kind, JobKind::Migrate) {
                pool.migration_finished();
            }
            return;
        };
        engine.run_job(&pool, job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_pool(migration_cap: usize, shards: usize) -> Arc<WorkerPool> {
        let registries: Vec<Registry> = (0..shards).map(|_| Registry::new()).collect();
        let refs: Vec<&Registry> = registries.iter().collect();
        WorkerPool::new(0, 1 << 20, migration_cap, &refs)
    }

    #[test]
    fn migrations_stagger_at_the_cap() {
        let pool = test_pool(1, 3);
        pool.enqueue_migrate(0, 0);
        pool.enqueue_migrate(1, 0);
        pool.enqueue_compact(1, 0);
        // First migrate is handed out and charges the stagger slot.
        let j0 = pool.next_job().unwrap();
        assert_eq!((j0.shard, j0.kind), (0, JobKind::Migrate));
        // The second migrate is blocked; the compact behind it runs.
        let j1 = pool.next_job().unwrap();
        assert_eq!((j1.shard, j1.kind), (1, JobKind::Compact));
        // Finishing the first migration unblocks the queued one.
        pool.migration_finished();
        let j2 = pool.next_job().unwrap();
        assert_eq!((j2.shard, j2.kind), (1, JobKind::Migrate));
        assert_eq!(pool.depths().0, 0);
    }

    #[test]
    fn migrate_dedup_is_per_shard() {
        let pool = test_pool(2, 2);
        pool.enqueue_migrate(0, 0);
        pool.enqueue_migrate(0, 0);
        pool.enqueue_migrate(1, 0);
        assert_eq!(pool.depths().0, 2, "per-shard dedup, cross-shard not");
        let a = pool.next_job().unwrap();
        let b = pool.next_job().unwrap();
        assert_eq!((a.shard, b.shard), (0, 1), "cap 2 admits both");
    }

    #[test]
    fn shutdown_drains_blocked_migrations() {
        let pool = test_pool(1, 2);
        pool.enqueue_migrate(0, 0);
        pool.enqueue_migrate(1, 0);
        let first = pool.next_job().unwrap();
        assert_eq!(first.kind, JobKind::Migrate);
        pool.shutdown();
        // The blocked migrate still runs once the slot frees.
        pool.migration_finished();
        assert_eq!(pool.next_job().unwrap().shard, 1);
        pool.migration_finished();
        assert!(pool.next_job().is_none(), "drained + shutdown exits");
    }
}
