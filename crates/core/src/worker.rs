//! Background maintenance workers: the engine's flush / compaction /
//! migration execution pool.
//!
//! With `background_workers > 0` the engine never pays a flush or merge
//! inline on the ingest or scan path. Instead it *seals* the full
//! in-memory buffer into an immutable batch, enqueues a job here, and
//! returns; a pool thread materializes the run off the critical path.
//! Callers only ever throttle through the bounded-backlog backpressure
//! gate ([`WorkerPool::wait_for_space`]) — ingest degrades to a wait,
//! never to inline I/O.
//!
//! Scheduling rules:
//!
//! * **Flush** jobs carry the id of one sealed batch. They are the only
//!   job kind that can exist more than once in the queue.
//! * **Compact** and **Migrate** are deduplicated: at most one of each
//!   queued at a time (re-requested after completion if still needed by
//!   [`crate::engine::MasmEngine`]'s maintenance check).
//! * A failing job retries up to [`MAX_JOB_ATTEMPTS`] times; a flush
//!   that exhausts its retries is *abandoned* — the engine moves the
//!   sealed batch's updates back into the in-memory buffer so no data
//!   is lost and queries keep seeing it (the WAL already holds every
//!   update). Workers never wedge on a poisoned job.
//! * Shutdown is **drain-then-exit**: queued jobs still run after
//!   [`WorkerPool::shutdown`] is signalled; threads exit once the queue
//!   is empty. [`WorkerHandle::join`] gives deterministic teardown.
//!
//! The pool's own mutex is a [`TrackedMutex`]: holding it across device
//! I/O is a debug-mode panic, same as the engine state lock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;

use parking_lot::Condvar;

use masm_storage::TrackedMutex;
use masm_telemetry::{Counter, Gauge, Registry, Unit};

use crate::engine::MasmEngine;

/// Retry budget per job: a job that fails this many times is abandoned
/// (flushes return their batch to the buffer; compactions and
/// migrations are simply dropped and re-requested by the next
/// maintenance check).
pub(crate) const MAX_JOB_ATTEMPTS: u32 = 3;

/// One unit of background work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JobKind {
    /// Materialize sealed batch `batch_id` as a 1-pass run.
    Flush { batch_id: u64 },
    /// Merge 1-pass runs down to the query-page budget.
    Compact,
    /// Migrate cached updates back into the main data.
    Migrate,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Job {
    pub kind: JobKind,
    pub attempts: u32,
}

struct PoolState {
    queue: VecDeque<Job>,
    /// Bytes of sealed batches whose flush has not yet completed (the
    /// backpressure signal; includes batches currently being flushed).
    backlog_bytes: u64,
    compact_queued: bool,
    migrate_queued: bool,
    shutdown: bool,
}

/// Registry-backed monotonic event counters, incremented by the workers
/// themselves at the point each event happens (satellite rule: the
/// subsystem pushes its own metrics; the engine only reads them).
pub(crate) struct WorkerCounters {
    pub jobs_completed: Arc<Counter>,
    pub jobs_retried: Arc<Counter>,
    pub jobs_failed: Arc<Counter>,
    pub flushes: Arc<Counter>,
    pub merges: Arc<Counter>,
    pub migrations: Arc<Counter>,
}

impl WorkerCounters {
    fn new(registry: &Registry) -> Self {
        let c = |name, help| registry.counter("worker", name, Unit::Ops, help);
        WorkerCounters {
            jobs_completed: c("jobs_completed", "background jobs that succeeded"),
            jobs_retried: c("jobs_retried", "background jobs re-queued after an error"),
            jobs_failed: c("jobs_failed", "background jobs abandoned after max retries"),
            flushes: c("flushes", "1-pass runs materialized by workers"),
            merges: c("merges", "2-pass merges executed by workers"),
            migrations: c("migrations", "migrations executed by workers"),
        }
    }
}

/// Shared state of the worker pool. The engine holds it in a
/// [`WorkerHandle`]; each worker thread holds its own `Arc`.
pub(crate) struct WorkerPool {
    state: TrackedMutex<PoolState>,
    /// Signalled when work is enqueued or shutdown is requested.
    work: Condvar,
    /// Signalled when backlog bytes drop (flush completed or abandoned).
    space: Condvar,
    pub counters: WorkerCounters,
    /// Gauge mirrors, owned by the pool and updated at every transition.
    queue_depth: Arc<Gauge>,
    backlog_gauge: Arc<Gauge>,
    pub threads: usize,
    backlog_limit: u64,
}

impl WorkerPool {
    pub fn new(threads: usize, backlog_limit: u64, registry: &Registry) -> Arc<Self> {
        let g = |name, unit, help| registry.gauge("worker", name, unit, help);
        let pool = WorkerPool {
            state: TrackedMutex::new(PoolState {
                queue: VecDeque::new(),
                backlog_bytes: 0,
                compact_queued: false,
                migrate_queued: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            counters: WorkerCounters::new(registry),
            queue_depth: g("queue_depth", Unit::Ops, "jobs waiting in the worker queue"),
            backlog_gauge: g(
                "backlog_bytes",
                Unit::Bytes,
                "sealed batch bytes awaiting background flush",
            ),
            threads,
            backlog_limit,
        };
        registry
            .gauge("worker", "threads", Unit::Ops, "background worker threads")
            .set(threads as u64);
        Arc::new(pool)
    }

    /// Enqueue a flush for sealed batch `batch_id` holding `bytes` of
    /// updates. Returns immediately; backpressure is a separate call so
    /// the engine can release its state lock first.
    pub fn enqueue_flush(&self, batch_id: u64, bytes: u64) {
        let mut st = self.state.lock();
        st.backlog_bytes += bytes;
        st.queue.push_back(Job {
            kind: JobKind::Flush { batch_id },
            attempts: 0,
        });
        self.queue_depth.set(st.queue.len() as u64);
        self.backlog_gauge.set(st.backlog_bytes);
        drop(st);
        self.work.notify_one();
    }

    /// Enqueue a compaction pass unless one is already queued.
    pub fn enqueue_compact(&self) {
        self.enqueue_dedup(JobKind::Compact);
    }

    /// Enqueue a migration unless one is already queued.
    pub fn enqueue_migrate(&self) {
        self.enqueue_dedup(JobKind::Migrate);
    }

    fn enqueue_dedup(&self, kind: JobKind) {
        let mut st = self.state.lock();
        // Maintenance requested after shutdown can never run — drop it
        // rather than strand it in the queue (unlike flushes, compact /
        // migrate carry no data and are re-requested whenever needed).
        if st.shutdown {
            return;
        }
        let flag = match kind {
            JobKind::Compact => &mut st.compact_queued,
            JobKind::Migrate => &mut st.migrate_queued,
            JobKind::Flush { .. } => unreachable!("flush jobs are not deduplicated"),
        };
        if std::mem::replace(flag, true) {
            return;
        }
        st.queue.push_back(Job { kind, attempts: 0 });
        self.queue_depth.set(st.queue.len() as u64);
        drop(st);
        self.work.notify_one();
    }

    /// Re-queue a failed job for another attempt.
    pub fn requeue(&self, job: Job) {
        let mut st = self.state.lock();
        match job.kind {
            JobKind::Compact => st.compact_queued = true,
            JobKind::Migrate => st.migrate_queued = true,
            JobKind::Flush { .. } => {}
        }
        st.queue.push_back(job);
        self.queue_depth.set(st.queue.len() as u64);
        drop(st);
        self.work.notify_one();
    }

    /// Drop `bytes` from the flush backlog (flush completed or batch
    /// abandoned) and wake any ingest thread throttled on it.
    pub fn release_backlog(&self, bytes: u64) {
        let mut st = self.state.lock();
        st.backlog_bytes = st.backlog_bytes.saturating_sub(bytes);
        self.backlog_gauge.set(st.backlog_bytes);
        drop(st);
        self.space.notify_all();
    }

    /// The ingest backpressure gate: block while the un-flushed backlog
    /// exceeds the configured limit. Returns immediately on shutdown so
    /// a tearing-down engine cannot strand an ingest thread.
    pub fn wait_for_space(&self) {
        let mut st = self.state.lock();
        while st.backlog_bytes > self.backlog_limit && !st.shutdown {
            self.space.wait(st.inner_mut());
        }
    }

    /// Current (queue depth, backlog bytes).
    pub fn depths(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.queue.len() as u64, st.backlog_bytes)
    }

    /// Whether shutdown has been signalled. The engine reverts to the
    /// inline flush/merge paths once this is true: a job enqueued past
    /// shutdown would never run.
    pub fn is_shutdown(&self) -> bool {
        self.state.lock().shutdown
    }

    /// Signal shutdown: workers drain the queue, then exit.
    pub fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.work.notify_all();
        self.space.notify_all();
    }

    /// Worker side: block for the next job. `None` means the queue is
    /// drained and shutdown was requested — exit the thread.
    fn next_job(&self) -> Option<Job> {
        let mut st = self.state.lock();
        loop {
            if let Some(job) = st.queue.pop_front() {
                match job.kind {
                    JobKind::Compact => st.compact_queued = false,
                    JobKind::Migrate => st.migrate_queued = false,
                    JobKind::Flush { .. } => {}
                }
                self.queue_depth.set(st.queue.len() as u64);
                return Some(job);
            }
            if st.shutdown {
                return None;
            }
            self.work.wait(st.inner_mut());
        }
    }
}

/// The engine's ownership handle: pool plus joinable thread handles.
pub(crate) struct WorkerHandle {
    pub pool: Arc<WorkerPool>,
    joins: std::sync::Mutex<Vec<JoinHandle<()>>>,
    joined: AtomicBool,
}

impl WorkerHandle {
    /// Spawn `threads` workers over a weak engine reference. The weak
    /// link breaks the `Arc` cycle: a dropped engine stops producing
    /// jobs, workers fail the upgrade and exit.
    pub fn spawn(engine: &Arc<MasmEngine>, pool: Arc<WorkerPool>) -> Self {
        let threads = pool.threads;
        let mut joins = Vec::with_capacity(threads);
        for i in 0..threads {
            let weak: Weak<MasmEngine> = Arc::downgrade(engine);
            let pool = Arc::clone(&pool);
            joins.push(
                std::thread::Builder::new()
                    .name(format!("masm-worker-{i}"))
                    .spawn(move || worker_loop(weak, pool))
                    .expect("spawn worker thread"),
            );
        }
        WorkerHandle {
            pool,
            joins: std::sync::Mutex::new(joins),
            joined: AtomicBool::new(false),
        }
    }

    /// Signal shutdown and join every worker (idempotent).
    pub fn join(&self) {
        self.pool.shutdown();
        if self.joined.swap(true, Ordering::AcqRel) {
            return;
        }
        let handles = std::mem::take(&mut *self.joins.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        // Signal only — never join from Drop (the last engine Arc may be
        // dropped *on* a worker thread, which cannot join itself).
        self.pool.shutdown();
    }
}

fn worker_loop(engine: Weak<MasmEngine>, pool: Arc<WorkerPool>) {
    while let Some(job) = pool.next_job() {
        let Some(engine) = engine.upgrade() else {
            return;
        };
        engine.run_job(&pool, job);
    }
}
