//! Commit/query timestamps (§3.2 "Timestamps").
//!
//! Every incoming update carries the commit time of the update; every
//! query carries a timestamp and sees exactly the earlier updates. The
//! timestamp order defines a total serial order, which is what makes
//! individual queries and updates serializable (§3.6) and what lets
//! in-place migration decide whether a data page has already absorbed an
//! update.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Logical timestamp.
pub type Timestamp = u64;

/// A monotonically increasing timestamp dispenser.
///
/// Timestamps start at 1; 0 is reserved as "before everything" (freshly
/// loaded data pages carry timestamp 0).
#[derive(Debug, Clone, Default)]
pub struct TimestampOracle {
    next: Arc<AtomicU64>,
}

impl TimestampOracle {
    /// Create an oracle whose first timestamp is 1.
    pub fn new() -> Self {
        TimestampOracle {
            next: Arc::new(AtomicU64::new(1)),
        }
    }

    /// Create an oracle that resumes after `last` (crash recovery).
    pub fn resume_after(last: Timestamp) -> Self {
        TimestampOracle {
            next: Arc::new(AtomicU64::new(last + 1)),
        }
    }

    /// Draw the next timestamp.
    pub fn next(&self) -> Timestamp {
        self.next.fetch_add(1, Ordering::AcqRel).max(1)
    }

    /// Ensure the next timestamp is strictly greater than `ts`.
    /// Monotonic (never moves the counter backwards), so sharded
    /// recovery can fold per-shard durable maxima into one shared
    /// oracle in any order.
    pub fn advance_past(&self, ts: Timestamp) {
        self.next.fetch_max(ts + 1, Ordering::AcqRel);
    }

    /// The most recently issued timestamp (0 if none).
    pub fn last_issued(&self) -> Timestamp {
        self.next.load(Ordering::Acquire).saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_from_one() {
        let o = TimestampOracle::new();
        assert_eq!(o.last_issued(), 0);
        assert_eq!(o.next(), 1);
        assert_eq!(o.next(), 2);
        assert_eq!(o.last_issued(), 2);
    }

    #[test]
    fn resume_after_continues() {
        let o = TimestampOracle::resume_after(41);
        assert_eq!(o.next(), 42);
    }

    #[test]
    fn advance_past_is_monotonic() {
        let o = TimestampOracle::new();
        o.advance_past(10);
        o.advance_past(3); // never backwards
        assert_eq!(o.next(), 11);
        o.advance_past(11); // no-op: 12 is already next
        assert_eq!(o.next(), 12);
    }

    #[test]
    fn clones_share_sequence() {
        let a = TimestampOracle::new();
        let b = a.clone();
        assert_eq!(a.next(), 1);
        assert_eq!(b.next(), 2);
    }

    #[test]
    fn concurrent_draws_are_unique() {
        let o = TimestampOracle::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let o = o.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| o.next()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000);
    }
}
