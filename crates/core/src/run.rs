//! Materialized sorted runs on the block-run format (§3.1–§3.3).
//!
//! A sorted run is a key-ordered sequence of update records written
//! **sequentially** to the SSD — never a random SSD write. Since the
//! `masm-blockrun` migration, a run is no longer a flat byte stream with
//! an in-memory sparse index: it is an immutable block-structured file
//! (see [`masm_blockrun::format`]) with
//!
//! * fixed-budget data blocks of records compressed through the
//!   configured codec (`masm-codec`: identity / delta+varint / LZ /
//!   per-block adaptive; the raw block is the decode unit — 64 KB
//!   default, 4 KB with the fine-grain index),
//! * a per-block zone map (min/max key and timestamp) that replaces the
//!   old sparse index and prunes blocks from scans,
//! * a per-run bloom filter for point lookups,
//! * CRC-32 checksums on every region, so a corrupted SSD read fails
//!   loudly instead of decoding garbage, and
//! * a self-describing footer, which lets crash recovery re-open a run
//!   from `(base, bytes)` without decoding a single record.
//!
//! Scans go through the engine's shared [`BlockCache`]: a block read off
//! the SSD is verified, decoded once, and served from memory afterwards
//! — warm scans and point lookups issue zero device reads.

use std::sync::Arc;

use masm_blockrun::{BlockCache, BlockRunMeta, BlockRunScan, Entry};
use masm_pagestore::Key;
use masm_storage::{SessionHandle, SimDevice};

use crate::config::MasmConfig;
use crate::error::MasmResult;
use crate::ts::Timestamp;
use crate::update::UpdateRecord;

/// Metadata of one materialized sorted run.
#[derive(Debug, Clone)]
pub struct SortedRun {
    /// Engine-assigned id (creation order; also the run's block-cache
    /// keyspace — ids are never reused, so stale cache entries cannot
    /// alias a live run).
    pub id: u64,
    /// Byte offset of the run on the SSD device.
    pub base: u64,
    /// Total encoded bytes (data blocks + index + bloom + footer).
    pub bytes: u64,
    /// Number of update records.
    pub count: u64,
    /// Smallest key in the run.
    pub min_key: Key,
    /// Largest key in the run.
    pub max_key: Key,
    /// Smallest update timestamp in the run.
    pub min_ts: Timestamp,
    /// Largest update timestamp in the run.
    pub max_ts: Timestamp,
    /// 1 for runs flushed straight from memory, 2 for merged runs
    /// (§3.3's 1-pass / 2-pass distinction).
    pub passes: u8,
    /// Block-run metadata: zone maps, bloom filter, region geometry.
    pub meta: Arc<BlockRunMeta>,
}

impl SortedRun {
    /// Wrap block-run metadata in engine-level run metadata.
    pub fn from_meta(id: u64, passes: u8, meta: BlockRunMeta) -> SortedRun {
        SortedRun {
            id,
            base: meta.base,
            bytes: meta.total_bytes,
            count: meta.entry_count,
            min_key: meta.min_key,
            max_key: meta.max_key,
            min_ts: meta.min_ts,
            max_ts: meta.max_ts,
            passes,
            meta: Arc::new(meta),
        }
    }

    /// Move the run (not yet written) to its allocated device offset.
    pub fn rebase(&mut self, base: u64) {
        self.base = base;
        Arc::make_mut(&mut self.meta).base = base;
    }

    /// In-memory metadata footprint (zone maps + bloom filter) — the
    /// analogue of the old sparse index's memory cost.
    pub fn memory_bytes(&self) -> usize {
        self.meta.memory_bytes()
    }
}

pub(crate) fn to_entry(u: &UpdateRecord) -> Entry {
    Entry::new(u.key, u.ts, u.encode_value())
}

fn from_entry(run_id: u64, e: Entry) -> UpdateRecord {
    UpdateRecord::decode_value(e.key, e.ts, &e.value)
        .unwrap_or_else(|| panic!("run {run_id}: undecodable entry for key {}", e.key))
}

/// Build the metadata and the full encoded byte stream of a run from its
/// sorted updates, without touching any device. The returned run has
/// base 0 — callers allocate space, [`SortedRun::rebase`], then write
/// with [`write_built`].
pub fn build_run(
    cfg: &MasmConfig,
    id: u64,
    base: u64,
    passes: u8,
    updates: &[UpdateRecord],
) -> (SortedRun, Vec<u8>) {
    assert!(!updates.is_empty(), "empty run");
    debug_assert!(updates
        .windows(2)
        .all(|w| (w[0].key, w[0].ts) <= (w[1].key, w[1].ts)));
    let entries: Vec<Entry> = updates.iter().map(to_entry).collect();
    let (meta, bytes) = masm_blockrun::build_run(&cfg.blockrun_config(), &entries);
    let mut run = SortedRun::from_meta(id, passes, meta);
    run.rebase(base);
    (run, bytes)
}

/// Write an already-built run's bytes at its base, strictly
/// sequentially, one I/O per block/region.
pub fn write_built(
    session: &SessionHandle,
    ssd: &SimDevice,
    run: &SortedRun,
    bytes: &[u8],
) -> MasmResult<()> {
    masm_blockrun::format::write_built(session, ssd, &run.meta, bytes)?;
    Ok(())
}

/// Build and write a materialized sorted run at `base`.
///
/// `updates` must be sorted by `(key, ts)`. All writes are sequential —
/// the `random_writes` counter of the update-cache SSD stays zero.
pub fn write_run(
    session: &SessionHandle,
    ssd: &SimDevice,
    cfg: &MasmConfig,
    id: u64,
    base: u64,
    passes: u8,
    updates: &[UpdateRecord],
) -> MasmResult<SortedRun> {
    let (run, bytes) = build_run(cfg, id, base, passes, updates);
    write_built(session, ssd, &run, &bytes)?;
    Ok(run)
}

/// Re-open a run during crash recovery from its durable footer: the
/// zone maps, bloom filter, and key/timestamp bounds all come back from
/// the (checksummed) metadata regions — no record is decoded.
pub fn recover_run(
    session: &SessionHandle,
    ssd: &SimDevice,
    id: u64,
    base: u64,
    bytes: u64,
    passes: u8,
) -> MasmResult<SortedRun> {
    let meta = masm_blockrun::read_meta(session, ssd, base, bytes)?;
    Ok(SortedRun::from_meta(id, passes, meta))
}

/// Streaming scan of one run restricted to `[begin, end]` — the
/// `Run_scan` operator of Figure 6, on blocks.
///
/// Zone maps select the blocks to visit; blocks come from the shared
/// [`BlockCache`] when resident, otherwise from asynchronous SSD reads
/// prefetched while the previous block decodes (§3.7's libaio overlap).
///
/// A checksum failure mid-scan **panics** with the block-run error: a
/// corrupted cached-update block means queries would silently lose
/// updates, which is strictly worse than stopping. Callers that want a
/// recoverable error use the `masm_blockrun` APIs directly.
pub struct RunScan {
    inner: BlockRunScan,
    run: Arc<SortedRun>,
}

impl RunScan {
    /// Open an uncached scan of `run` over `[begin, end]`.
    pub fn new(
        ssd: SimDevice,
        session: SessionHandle,
        run: Arc<SortedRun>,
        begin: Key,
        end: Key,
    ) -> Self {
        Self::with_cache(ssd, session, run, None, begin, end)
    }

    /// Open a scan served through `cache`.
    pub fn with_cache(
        ssd: SimDevice,
        session: SessionHandle,
        run: Arc<SortedRun>,
        cache: Option<Arc<BlockCache>>,
        begin: Key,
        end: Key,
    ) -> Self {
        let inner = BlockRunScan::new(
            ssd,
            session,
            Arc::clone(&run.meta),
            cache,
            run.id,
            begin,
            end,
        );
        RunScan { inner, run }
    }

    /// Keep up to `depth` async reads in flight (default 1). Merges and
    /// migrations set this to their fan-in so a k-way merge keeps ≈k
    /// reads queued on the device (§3.7 overlap at scale).
    pub fn with_prefetch_depth(mut self, depth: usize) -> Self {
        self.inner = self.inner.with_prefetch_depth(depth);
        self
    }

    /// Record per-block fetch stalls (virtual-ns) into `hist` — the
    /// engine wires its `op.block_fetch` histogram through here.
    pub fn with_fetch_histogram(mut self, hist: Arc<masm_telemetry::Histogram>) -> Self {
        self.inner = self.inner.with_fetch_histogram(hist);
        self
    }

    /// Emit `block.fetch` spans and `block.prefetch` instants for this
    /// scan to `tracer`, on process track `pid` (the owning shard) —
    /// the engine wires its installed [`masm_telemetry::Tracer`]
    /// through here.
    pub fn with_trace(mut self, tracer: Arc<masm_telemetry::Tracer>, pid: u32) -> Self {
        self.inner = self.inner.with_trace(tracer, pid);
        self
    }

    /// Bytes this scan has read off the SSD (cache hits cost nothing).
    pub fn bytes_read(&self) -> u64 {
        self.inner.bytes_read()
    }

    /// The run being scanned.
    pub fn run(&self) -> &SortedRun {
        &self.run
    }
}

impl Iterator for RunScan {
    type Item = UpdateRecord;

    fn next(&mut self) -> Option<UpdateRecord> {
        match self.inner.next() {
            Some(e) => Some(from_entry(self.run.id, e)),
            None => {
                if let Some(e) = self.inner.error() {
                    panic!("run {} scan failed: {e}", self.run.id);
                }
                None
            }
        }
    }
}

/// All updates for `key` in `run`, oldest first — a bloom-guarded point
/// lookup: zero I/O when the filter excludes the key, zero *device* I/O
/// when the needed block is cached.
pub fn lookup_in_run(
    session: &SessionHandle,
    ssd: &SimDevice,
    run: &SortedRun,
    cache: Option<&BlockCache>,
    key: Key,
) -> MasmResult<Vec<UpdateRecord>> {
    let entries =
        masm_blockrun::point_lookup(session, ssd, &run.meta, key, cache.map(|c| (c, run.id)))?;
    Ok(entries.into_iter().map(|e| from_entry(run.id, e)).collect())
}

/// Bump allocator for run space on the SSD.
///
/// Runs are only deleted wholesale (after a migration, or when 1-pass
/// runs are folded into a 2-pass run), so a bump pointer plus a live-byte
/// counter suffices; when nothing is live the pointer rewinds — the
/// paper's circular reuse of the flash space.
#[derive(Debug, Default, Clone)]
pub struct SsdSpace {
    origin: u64,
    next: u64,
    live: u64,
}

impl SsdSpace {
    /// Reconstruct allocator state during recovery.
    pub fn with_state(origin: u64, next: u64, live: u64) -> Self {
        SsdSpace {
            origin,
            next: next.max(origin),
            live,
        }
    }

    /// An allocator whose region starts at `origin` (several engines can
    /// then share one physical SSD, each with its own region — the
    /// paper's per-table division of the flash space in §4.3).
    pub fn with_origin(origin: u64) -> Self {
        SsdSpace {
            origin,
            next: origin,
            live: 0,
        }
    }

    /// Allocate `bytes` of sequential space.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let off = self.next;
        self.next += bytes;
        self.live += bytes;
        off
    }

    /// Release `bytes` (a deleted run). Rewinds when nothing is live.
    pub fn free(&mut self, bytes: u64) {
        self.live = self.live.saturating_sub(bytes);
        if self.live == 0 {
            self.next = self.origin;
        }
    }

    /// Bytes in live runs.
    pub fn live_bytes(&self) -> u64 {
        self.live
    }

    /// High-water mark of allocated space.
    pub fn high_water(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::{FieldPatch, UpdateOp};
    use masm_storage::{DeviceProfile, SimClock};

    fn setup() -> (SimDevice, SessionHandle, MasmConfig) {
        let clock = SimClock::new();
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let session = SessionHandle::fresh(clock);
        let mut cfg = MasmConfig::small_for_tests();
        cfg.index_granularity = crate::config::IndexGranularity::Bytes(64);
        (ssd, session, cfg)
    }

    fn updates(keys: &[Key]) -> Vec<UpdateRecord> {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| UpdateRecord::new(i as u64 + 1, k, UpdateOp::Delete))
            .collect()
    }

    #[test]
    fn write_and_scan_full() {
        let (ssd, s, cfg) = setup();
        let us = updates(&[1, 3, 5, 7, 9]);
        let run = write_run(&s, &ssd, &cfg, 1, 0, 1, &us).unwrap();
        assert_eq!(run.count, 5);
        assert_eq!(run.min_key, 1);
        assert_eq!(run.max_key, 9);
        assert_eq!(run.min_ts, 1);
        assert_eq!(run.max_ts, 5);
        let got: Vec<Key> = RunScan::new(ssd, s, Arc::new(run), 0, u64::MAX)
            .map(|u| u.key)
            .collect();
        assert_eq!(got, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn all_op_kinds_roundtrip_through_blocks() {
        let (ssd, s, cfg) = setup();
        let us = vec![
            UpdateRecord::new(1, 2, UpdateOp::Insert(vec![7u8; 20])),
            UpdateRecord::new(2, 4, UpdateOp::Delete),
            UpdateRecord::new(
                3,
                6,
                UpdateOp::Modify(vec![FieldPatch {
                    field: 1,
                    value: vec![1, 2, 3, 4],
                }]),
            ),
            UpdateRecord::new(4, 8, UpdateOp::Replace(vec![9u8; 12])),
        ];
        let run = write_run(&s, &ssd, &cfg, 1, 0, 1, &us).unwrap();
        let got: Vec<UpdateRecord> = RunScan::new(ssd, s, Arc::new(run), 0, u64::MAX).collect();
        assert_eq!(got, us);
    }

    #[test]
    fn scan_range_narrows_reads() {
        let (ssd, s, cfg) = setup();
        // Enough updates that the run spans many 64-byte blocks.
        let keys: Vec<Key> = (0..200).map(|i| i * 2).collect();
        let us = updates(&keys);
        let run = Arc::new(write_run(&s, &ssd, &cfg, 1, 0, 1, &us).unwrap());
        assert!(run.meta.zones.len() > 10, "{} blocks", run.meta.zones.len());
        let mut scan = RunScan::new(ssd.clone(), s.clone(), run.clone(), 100, 110);
        let got: Vec<Key> = scan.by_ref().map(|u| u.key).collect();
        assert_eq!(got, vec![100, 102, 104, 106, 108, 110]);
        assert!(
            scan.bytes_read() < run.bytes / 4,
            "read {} of {} bytes",
            scan.bytes_read(),
            run.bytes
        );
    }

    #[test]
    fn scan_outside_key_range_reads_nothing() {
        let (ssd, s, cfg) = setup();
        let us = updates(&[100, 200, 300]);
        let run = Arc::new(write_run(&s, &ssd, &cfg, 1, 0, 1, &us).unwrap());
        let mut scan = RunScan::new(ssd, s, run, 400, 500);
        assert!(scan.next().is_none());
        assert_eq!(scan.bytes_read(), 0);
    }

    #[test]
    fn run_writes_are_never_random() {
        let (ssd, s, cfg) = setup();
        ssd.prime_head_position(0);
        ssd.reset_stats();
        let keys: Vec<Key> = (0..5000).collect();
        let us = updates(&keys);
        write_run(&s, &ssd, &cfg, 1, 0, 1, &us).unwrap();
        let stats = ssd.stats();
        assert_eq!(stats.random_writes, 0, "{stats:?}");
        assert!(stats.write_ops > 10);
    }

    #[test]
    fn cached_rescan_reads_zero_bytes() {
        let (ssd, s, cfg) = setup();
        let keys: Vec<Key> = (0..500).collect();
        let run = Arc::new(write_run(&s, &ssd, &cfg, 1, 0, 1, &updates(&keys)).unwrap());
        let cache = Arc::new(BlockCache::new(1 << 20));
        let cold: Vec<Key> = RunScan::with_cache(
            ssd.clone(),
            s.clone(),
            Arc::clone(&run),
            Some(Arc::clone(&cache)),
            0,
            u64::MAX,
        )
        .map(|u| u.key)
        .collect();
        assert_eq!(cold, keys);
        let mut warm = RunScan::with_cache(ssd, s, run, Some(Arc::clone(&cache)), 0, u64::MAX);
        let warm_keys: Vec<Key> = warm.by_ref().map(|u| u.key).collect();
        assert_eq!(warm_keys, keys);
        assert_eq!(warm.bytes_read(), 0, "warm scan is pure cache");
        assert!(cache.stats().hits > 0);
    }

    #[test]
    fn point_lookup_finds_and_excludes() {
        let (ssd, s, cfg) = setup();
        let keys: Vec<Key> = (0..400).map(|i| i * 2).collect();
        let run = write_run(&s, &ssd, &cfg, 1, 0, 1, &updates(&keys)).unwrap();
        let hit = lookup_in_run(&s, &ssd, &run, None, 200).unwrap();
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].key, 200);
        // Absent keys mostly cost zero reads thanks to the bloom filter.
        ssd.reset_stats();
        let mut io_free = 0;
        for probe in 0..100u64 {
            let before = ssd.stats().read_ops;
            assert!(lookup_in_run(&s, &ssd, &run, None, probe * 2 + 1)
                .unwrap()
                .is_empty());
            if ssd.stats().read_ops == before {
                io_free += 1;
            }
        }
        assert!(io_free > 90, "bloom skipped I/O for {io_free}/100");
    }

    #[test]
    fn recovery_reopens_run_from_footer() {
        let (ssd, s, cfg) = setup();
        let keys: Vec<Key> = (0..300).map(|i| i * 3).collect();
        let run = write_run(&s, &ssd, &cfg, 7, 0, 2, &updates(&keys)).unwrap();
        let back = recover_run(&s, &ssd, 7, 0, run.bytes, 2).unwrap();
        assert_eq!(back.count, run.count);
        assert_eq!(back.min_key, run.min_key);
        assert_eq!(back.max_key, run.max_key);
        assert_eq!(back.min_ts, run.min_ts);
        assert_eq!(back.max_ts, run.max_ts);
        assert_eq!(back.meta.zones, run.meta.zones);
        let got: Vec<Key> = RunScan::new(ssd, s, Arc::new(back), 0, u64::MAX)
            .map(|u| u.key)
            .collect();
        assert_eq!(got, keys);
    }

    #[test]
    fn ssd_space_rewinds_when_empty() {
        let mut sp = SsdSpace::default();
        let a = sp.alloc(100);
        let b = sp.alloc(50);
        assert_eq!(a, 0);
        assert_eq!(b, 100);
        assert_eq!(sp.live_bytes(), 150);
        sp.free(100);
        assert_eq!(sp.live_bytes(), 50);
        sp.free(50);
        assert_eq!(sp.live_bytes(), 0);
        assert_eq!(sp.alloc(10), 0, "pointer rewound");
    }
}
