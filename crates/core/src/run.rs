//! Materialized sorted runs with read-only run indexes (§3.1–§3.3).
//!
//! A sorted run is a key-ordered sequence of update records written
//! **sequentially** to the SSD in `P`-sized I/Os (64 KB in §4.1) — never
//! a random SSD write. Because runs are read-only once materialized, a
//! simple *run index* (the smallest key per fixed amount of bytes) lets a
//! range scan read only the SSD pages overlapping its key range: with the
//! fine-grain index a 4 KB range scan reads ≈4 KB per run, which is what
//! keeps small-scan overhead at a few percent (Figure 9).

use std::collections::VecDeque;
use std::sync::Arc;

use masm_pagestore::Key;
use masm_storage::{SessionHandle, SimDevice};

use crate::config::MasmConfig;
use crate::error::MasmResult;
use crate::ts::Timestamp;
use crate::update::UpdateRecord;

/// One run-index entry: the first key at a byte offset within the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunIndexEntry {
    /// Smallest key at or after `offset`.
    pub key: Key,
    /// Record-aligned byte offset within the run.
    pub offset: u64,
}

/// Read-only sparse index over one materialized run.
#[derive(Debug, Clone, Default)]
pub struct RunIndex {
    entries: Vec<RunIndexEntry>,
    total_bytes: u64,
}

impl RunIndex {
    /// Number of index entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the run is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Memory footprint of the index in bytes (4-byte key prefix + 4-byte
    /// offset per entry would suffice; we count 16 for our fatter repr).
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<RunIndexEntry>()
    }

    /// Byte span `[lo, hi)` of the run that can contain keys in
    /// `[begin, end]`.
    pub fn lookup(&self, begin: Key, end: Key) -> Option<(u64, u64)> {
        if self.entries.is_empty() || end < begin {
            return None;
        }
        // First cell whose first key could reach `begin`: the last entry
        // with key <= begin (earlier cells end before `begin`).
        let lo_idx = self
            .entries
            .partition_point(|e| e.key <= begin)
            .saturating_sub(1);
        // Cells after the first entry with key > end cannot overlap.
        let hi_idx = self.entries.partition_point(|e| e.key <= end);
        if hi_idx == 0 {
            return None;
        }
        let lo = self.entries[lo_idx].offset;
        let hi = if hi_idx < self.entries.len() {
            self.entries[hi_idx].offset
        } else {
            self.total_bytes
        };
        (lo < hi).then_some((lo, hi))
    }
}

/// Metadata of one materialized sorted run.
#[derive(Debug, Clone)]
pub struct SortedRun {
    /// Engine-assigned id (creation order).
    pub id: u64,
    /// Byte offset of the run on the SSD device.
    pub base: u64,
    /// Total encoded bytes.
    pub bytes: u64,
    /// Number of update records.
    pub count: u64,
    /// Smallest / largest key in the run.
    pub min_key: Key,
    /// Largest key in the run.
    pub max_key: Key,
    /// Smallest / largest update timestamp in the run.
    pub min_ts: Timestamp,
    /// Largest update timestamp in the run.
    pub max_ts: Timestamp,
    /// 1 for runs flushed straight from memory, 2 for merged runs
    /// (§3.3's 1-pass / 2-pass distinction).
    pub passes: u8,
    /// The read-only run index.
    pub index: RunIndex,
}

/// Build the metadata (including the run index) and the encoded bytes of
/// a run from its sorted updates. Used by [`write_run`] and by crash
/// recovery, which re-derives the in-memory index from durable run bytes.
pub fn build_run(
    cfg: &MasmConfig,
    id: u64,
    base: u64,
    passes: u8,
    updates: &[UpdateRecord],
) -> (SortedRun, Vec<u8>) {
    assert!(!updates.is_empty(), "empty run");
    debug_assert!(updates
        .windows(2)
        .all(|w| (w[0].key, w[0].ts) <= (w[1].key, w[1].ts)));

    let granularity = cfg.index_granularity.bytes();
    let mut buf = Vec::with_capacity(updates.len() * 24);
    let mut entries = Vec::new();
    let mut next_cell = 0u64;
    let mut min_ts = Timestamp::MAX;
    let mut max_ts = 0;
    for u in updates {
        let off = buf.len() as u64;
        if off >= next_cell {
            entries.push(RunIndexEntry { key: u.key, offset: off });
            next_cell = off + granularity;
        }
        u.encode_into(&mut buf);
        min_ts = min_ts.min(u.ts);
        max_ts = max_ts.max(u.ts);
    }
    let run = SortedRun {
        id,
        base,
        bytes: buf.len() as u64,
        count: updates.len() as u64,
        min_key: updates.first().expect("non-empty").key,
        max_key: updates.last().expect("non-empty").key,
        min_ts,
        max_ts,
        passes,
        index: RunIndex {
            entries,
            total_bytes: buf.len() as u64,
        },
    };
    (run, buf)
}

/// Write a materialized sorted run.
///
/// `updates` must be sorted by `(key, ts)`. Writes proceed sequentially
/// in `ssd_page_size` I/Os. Returns the run metadata (including the
/// freshly built run index).
pub fn write_run(
    session: &SessionHandle,
    ssd: &SimDevice,
    cfg: &MasmConfig,
    id: u64,
    base: u64,
    passes: u8,
    updates: &[UpdateRecord],
) -> MasmResult<SortedRun> {
    let (run, buf) = build_run(cfg, id, base, passes, updates);

    // Sequential writes in P-sized I/Os (the last one may be short).
    let page = cfg.ssd_page_size;
    let mut off = base;
    for chunk in buf.chunks(page) {
        session.write(ssd, off, chunk)?;
        off += chunk.len() as u64;
    }
    Ok(run)
}

/// Streaming scan of one run restricted to `[begin, end]`.
///
/// Reads the index-selected byte span in `P`-sized chunks, prefetching
/// the next chunk asynchronously while the current one is decoded — this
/// is the `Run_scan` operator of Figure 6.
pub struct RunScan {
    ssd: SimDevice,
    session: SessionHandle,
    run: Arc<SortedRun>,
    begin: Key,
    end: Key,
    /// Absolute device offset of the next unread byte.
    next_off: u64,
    /// Absolute device offset one past the span.
    span_end: u64,
    /// Pending async read (data, for the carry buffer).
    pending: Option<masm_storage::IoTicket>,
    carry: Vec<u8>,
    buffer: VecDeque<UpdateRecord>,
    chunk: u64,
    /// Bytes read from the SSD by this scan.
    bytes_read: u64,
    done: bool,
}

impl RunScan {
    /// Open a scan of `run` over `[begin, end]`.
    pub fn new(
        ssd: SimDevice,
        session: SessionHandle,
        run: Arc<SortedRun>,
        cfg: &MasmConfig,
        begin: Key,
        end: Key,
    ) -> Self {
        let in_range = begin <= run.max_key && end >= run.min_key;
        let (next_off, span_end, done) = match in_range
            .then(|| run.index.lookup(begin, end))
            .flatten()
        {
            Some((lo, hi)) => (run.base + lo, run.base + hi, false),
            None => (run.base, run.base, true),
        };
        let mut scan = RunScan {
            ssd,
            session,
            run,
            begin,
            end,
            next_off,
            span_end,
            pending: None,
            carry: Vec::new(),
            buffer: VecDeque::new(),
            chunk: cfg.ssd_page_size as u64,
            bytes_read: 0,
            done,
        };
        // Issue the first read immediately: a query opens all its
        // Run_scans at once, so their first (random) SSD reads queue
        // together and overlap — the paper's libaio behaviour (§3.7).
        scan.issue_next();
        scan
    }

    /// Bytes this scan has read off the SSD.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// The run being scanned.
    pub fn run(&self) -> &SortedRun {
        &self.run
    }

    fn issue_next(&mut self) {
        if self.pending.is_some() || self.next_off >= self.span_end {
            return;
        }
        let len = (self.span_end - self.next_off).min(self.chunk);
        if let Ok(ticket) = self.session.read_async(&self.ssd, self.next_off, len) {
            self.next_off += len;
            self.bytes_read += len;
            self.pending = Some(ticket);
        } else {
            self.done = true;
        }
    }

    fn refill(&mut self) -> bool {
        if self.done {
            return false;
        }
        self.issue_next();
        let Some(ticket) = self.pending.take() else {
            self.done = true;
            return false;
        };
        let data = self.session.wait(ticket);
        // Prefetch the next chunk before decoding (overlap).
        self.issue_next();
        self.carry.extend_from_slice(&data);
        let mut pos = 0usize;
        while let Some((u, used)) = UpdateRecord::decode(&self.carry[pos..]) {
            pos += used;
            if u.key > self.end {
                self.done = true;
                break;
            }
            if u.key >= self.begin {
                self.buffer.push_back(u);
            }
        }
        self.carry.drain(..pos);
        true
    }
}

impl Iterator for RunScan {
    type Item = UpdateRecord;

    fn next(&mut self) -> Option<UpdateRecord> {
        while self.buffer.is_empty() {
            if !self.refill() {
                return None;
            }
        }
        self.buffer.pop_front()
    }
}

/// Bump allocator for run space on the SSD.
///
/// Runs are only deleted wholesale (after a migration, or when 1-pass
/// runs are folded into a 2-pass run), so a bump pointer plus a live-byte
/// counter suffices; when nothing is live the pointer rewinds — the
/// paper's circular reuse of the flash space.
#[derive(Debug, Default, Clone)]
pub struct SsdSpace {
    origin: u64,
    next: u64,
    live: u64,
}

impl SsdSpace {
    /// Reconstruct allocator state during recovery.
    pub fn with_state(origin: u64, next: u64, live: u64) -> Self {
        SsdSpace {
            origin,
            next: next.max(origin),
            live,
        }
    }

    /// An allocator whose region starts at `origin` (several engines can
    /// then share one physical SSD, each with its own region — the
    /// paper's per-table division of the flash space in §4.3).
    pub fn with_origin(origin: u64) -> Self {
        SsdSpace {
            origin,
            next: origin,
            live: 0,
        }
    }

    /// Allocate `bytes` of sequential space.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let off = self.next;
        self.next += bytes;
        self.live += bytes;
        off
    }

    /// Release `bytes` (a deleted run). Rewinds when nothing is live.
    pub fn free(&mut self, bytes: u64) {
        self.live = self.live.saturating_sub(bytes);
        if self.live == 0 {
            self.next = self.origin;
        }
    }

    /// Bytes in live runs.
    pub fn live_bytes(&self) -> u64 {
        self.live
    }

    /// High-water mark of allocated space.
    pub fn high_water(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::UpdateOp;
    use masm_storage::{DeviceProfile, SimClock};

    fn setup() -> (SimDevice, SessionHandle, MasmConfig) {
        let clock = SimClock::new();
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let session = SessionHandle::fresh(clock);
        let mut cfg = MasmConfig::small_for_tests();
        cfg.index_granularity = crate::config::IndexGranularity::Bytes(64);
        (ssd, session, cfg)
    }

    fn updates(keys: &[Key]) -> Vec<UpdateRecord> {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| UpdateRecord::new(i as u64 + 1, k, UpdateOp::Delete))
            .collect()
    }

    #[test]
    fn write_and_scan_full() {
        let (ssd, s, cfg) = setup();
        let us = updates(&[1, 3, 5, 7, 9]);
        let run = write_run(&s, &ssd, &cfg, 1, 0, 1, &us).unwrap();
        assert_eq!(run.count, 5);
        assert_eq!(run.min_key, 1);
        assert_eq!(run.max_key, 9);
        assert_eq!(run.min_ts, 1);
        assert_eq!(run.max_ts, 5);
        let got: Vec<Key> = RunScan::new(ssd, s, Arc::new(run), &cfg, 0, u64::MAX)
            .map(|u| u.key)
            .collect();
        assert_eq!(got, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn scan_range_narrows_reads() {
        let (ssd, s, cfg) = setup();
        // Enough updates that the index has several cells (granularity 64B,
        // each delete record is 17B -> ~4 records per cell).
        let keys: Vec<Key> = (0..200).map(|i| i * 2).collect();
        let us = updates(&keys);
        let run = Arc::new(write_run(&s, &ssd, &cfg, 1, 0, 1, &us).unwrap());
        assert!(run.index.len() > 10);
        let mut scan = RunScan::new(ssd.clone(), s.clone(), run.clone(), &cfg, 100, 110);
        let got: Vec<Key> = scan.by_ref().map(|u| u.key).collect();
        assert_eq!(got, vec![100, 102, 104, 106, 108, 110]);
        assert!(
            scan.bytes_read() < run.bytes / 4,
            "read {} of {} bytes",
            scan.bytes_read(),
            run.bytes
        );
    }

    #[test]
    fn scan_outside_key_range_reads_nothing() {
        let (ssd, s, cfg) = setup();
        let us = updates(&[100, 200, 300]);
        let run = Arc::new(write_run(&s, &ssd, &cfg, 1, 0, 1, &us).unwrap());
        let mut scan = RunScan::new(ssd, s, run, &cfg, 400, 500);
        assert!(scan.next().is_none());
        assert_eq!(scan.bytes_read(), 0);
    }

    #[test]
    fn run_writes_are_never_random() {
        let (ssd, s, cfg) = setup();
        ssd.reset_stats();
        let keys: Vec<Key> = (0..5000).collect();
        let us = updates(&keys);
        write_run(&s, &ssd, &cfg, 1, 0, 1, &us).unwrap();
        let stats = ssd.stats();
        // First write of a fresh device counts as random (no predecessor);
        // everything else must be sequential.
        assert!(stats.random_writes <= 1, "{stats:?}");
        assert!(stats.write_ops > 10);
    }

    #[test]
    fn index_lookup_bounds() {
        let idx = RunIndex {
            entries: vec![
                RunIndexEntry { key: 10, offset: 0 },
                RunIndexEntry { key: 50, offset: 100 },
                RunIndexEntry { key: 90, offset: 200 },
            ],
            total_bytes: 300,
        };
        // Range entirely before the run: no cell can contain keys < 10.
        assert_eq!(idx.lookup(0, 5), None);
        let full = idx.lookup(0, 1000);
        assert_eq!(full, Some((0, 300)));
        assert_eq!(idx.lookup(50, 50), Some((100, 200)));
        assert_eq!(idx.lookup(91, 95), Some((200, 300)));
        assert_eq!(idx.lookup(10, 49), Some((0, 100)));
    }

    #[test]
    fn ssd_space_rewinds_when_empty() {
        let mut sp = SsdSpace::default();
        let a = sp.alloc(100);
        let b = sp.alloc(50);
        assert_eq!(a, 0);
        assert_eq!(b, 100);
        assert_eq!(sp.live_bytes(), 150);
        sp.free(100);
        assert_eq!(sp.live_bytes(), 50);
        sp.free(50);
        assert_eq!(sp.live_bytes(), 0);
        assert_eq!(sp.alloc(10), 0, "pointer rewound");
    }

    #[test]
    fn decode_across_chunk_boundaries() {
        let (ssd, s, mut cfg) = setup();
        cfg.ssd_page_size = 1024; // force many small chunks
        let keys: Vec<Key> = (0..500).collect();
        let us = updates(&keys);
        let run = Arc::new(write_run(&s, &ssd, &cfg, 1, 0, 1, &us).unwrap());
        let got: Vec<Key> = RunScan::new(ssd, s, run, &cfg, 0, u64::MAX)
            .map(|u| u.key)
            .collect();
        assert_eq!(got.len(), 500);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }
}
