//! The merge operators of Figures 6 and 7, as Rust iterators.
//!
//! The paper builds a Volcano-style operator tree replacing
//! `Table_range_scan`:
//!
//! ```text
//! Merge_data_updates           -- outer join of data and updates
//!  ├── Table_range_scan        -- masm_pagestore::RangeScan
//!  └── Merge_updates           -- k-way merge of sorted update streams
//!       ├── Run_scan ×k        -- crate::run::RunScan
//!       └── Mem_scan           -- sorted snapshot of the update buffer
//! ```
//!
//! Rust iterators *are* Volcano operators (pull-based `next()`), so the
//! tree is literally a composition of iterators here.
//!
//! **Idempotence note.** `Merge_updates` folds all updates to the same
//! key into one (e.g. delete + insert ⇒ replace). During migration a
//! page's timestamp may fall *between* two folded updates; applying the
//! folded result again is still correct because every folded form is a
//! state-setter (replace/delete/modify-to-value), i.e. idempotent — the
//! paper relies on the same property for crash-redo of migrations.
//!
//! Run-to-run merges (2-pass materialization, §3.5 compaction) no
//! longer flow through these operators unconditionally: they are
//! planned first. [`compact_block_runs`] asks the
//! [`masm_blockrun::plan::MergePlanner`] which whole blocks overlap no
//! other input and relinks those verbatim — CRC-checked, never decoded
//! — falling back to the k-way fold only for genuinely overlapping key
//! ranges.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use masm_blockrun::{BlockRunMeta, BloomFilter, MergePlanner, RunBuilder, Segment};
use masm_pagestore::{Key, Record, Schema};
use masm_storage::{IoTicket, MergeReport, SessionHandle, SimDevice};

use crate::config::MasmConfig;
use crate::error::MasmResult;
use crate::run::{to_entry, RunScan, SortedRun};
use crate::ts::Timestamp;
use crate::update::UpdateRecord;

/// Type-erased sorted update stream (sorted by `(key, ts)`).
pub type UpdateStream = Box<dyn Iterator<Item = UpdateRecord> + Send>;

struct HeapEntry {
    key: Key,
    ts: Timestamp,
    src: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.key, self.ts, self.src) == (other.key, other.ts, other.src)
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.ts, self.src).cmp(&(other.key, other.ts, other.src))
    }
}

/// Raw k-way merge of sorted update streams: yields every update in
/// `(key, ts)` order without folding. Used directly when materializing a
/// 2-pass run (folding there is a separate, guarded step — see
/// [`fold_duplicates`]).
pub struct KWayUpdates {
    streams: Vec<UpdateStream>,
    heads: Vec<Option<UpdateRecord>>,
    heap: BinaryHeap<Reverse<HeapEntry>>,
}

impl KWayUpdates {
    /// Merge `streams`, each sorted by `(key, ts)`.
    pub fn new(streams: Vec<UpdateStream>) -> Self {
        let mut m = KWayUpdates {
            heads: streams.iter().map(|_| None).collect(),
            streams,
            heap: BinaryHeap::new(),
        };
        for i in 0..m.streams.len() {
            m.pull(i);
        }
        m
    }

    fn pull(&mut self, src: usize) {
        if let Some(u) = self.streams[src].next() {
            self.heap.push(Reverse(HeapEntry {
                key: u.key,
                ts: u.ts,
                src,
            }));
            self.heads[src] = Some(u);
        }
    }

    /// Key of the next update without consuming it.
    pub fn peek_key(&self) -> Option<Key> {
        self.heap.peek().map(|Reverse(e)| e.key)
    }
}

impl Iterator for KWayUpdates {
    type Item = UpdateRecord;

    fn next(&mut self) -> Option<UpdateRecord> {
        let Reverse(entry) = self.heap.pop()?;
        let u = self.heads[entry.src].take().expect("head present");
        self.pull(entry.src);
        Some(u)
    }
}

/// `Merge_updates`: k-way merge of sorted update streams, folding all
/// updates to one key (visible at `as_of`) into a single update.
pub struct MergeUpdates {
    inner: KWayUpdates,
    schema: Schema,
    as_of: Timestamp,
}

impl MergeUpdates {
    /// Merge `streams` (each sorted by `(key, ts)`), keeping only updates
    /// with `ts ≤ as_of`.
    pub fn new(streams: Vec<UpdateStream>, schema: Schema, as_of: Timestamp) -> Self {
        MergeUpdates {
            inner: KWayUpdates::new(streams),
            schema,
            as_of,
        }
    }
}

impl Iterator for MergeUpdates {
    type Item = UpdateRecord;

    fn next(&mut self) -> Option<UpdateRecord> {
        loop {
            let first = self.inner.next()?;
            let key = first.key;
            // Collect every update for this key (streams are key-sorted,
            // so they are all at the heap front), in timestamp order
            // thanks to the heap's (key, ts) ordering.
            let mut merged = (first.ts <= self.as_of).then_some(first);
            while self.inner.peek_key() == Some(key) {
                let nxt = self.inner.next().expect("peeked");
                if nxt.ts > self.as_of {
                    continue;
                }
                merged = Some(match merged {
                    Some(cur) => cur.merge_with_later(&nxt, &self.schema),
                    None => nxt,
                });
            }
            if merged.is_some() {
                return merged;
            }
            // Every update for this key was invisible; try the next key.
        }
    }
}

/// Fold duplicate updates for run materialization (§3.5 "Handling
/// Skews"): consecutive same-key updates `(t1, t2)` merge only when
/// `guard(t1, t2)` confirms no concurrent query timestamp `t` satisfies
/// `t1 < t ≤ t2`.
pub fn fold_duplicates(
    sorted: Vec<UpdateRecord>,
    schema: &Schema,
    guard: impl Fn(Timestamp, Timestamp) -> bool,
) -> Vec<UpdateRecord> {
    let mut out: Vec<UpdateRecord> = Vec::with_capacity(sorted.len());
    for u in sorted {
        match out.last_mut() {
            Some(prev) if prev.key == u.key && guard(prev.ts, u.ts) => {
                *prev = prev.merge_with_later(&u, schema);
            }
            _ => out.push(u),
        }
    }
    out
}

/// Union of the input runs' bloom filters, when every input has one. A
/// valid (over-approximating) filter for the compacted output: its key
/// set is a subset of the inputs' union. Unequal filter sizes fold to
/// the smallest input's power-of-two geometry. Packing k runs' keys
/// into one input's bits raises the false-positive rate — at fill 0.75
/// and 7 probes the FPR is ≈13%, still rejecting ~87% of absent-key
/// probes for a few KB — so the union is kept until it approaches
/// saturation (fill ≥ 0.95, FPR ≈ 0.7), past which it answers "maybe"
/// for nearly every probe while still costing resident memory.
fn union_input_blooms(inputs: &[Arc<SortedRun>]) -> Option<BloomFilter> {
    let mut blooms = inputs.iter().map(|r| r.meta.bloom.as_ref());
    let first = blooms.next()??.clone();
    let union = blooms.try_fold(first, |acc, b| acc.union(b?))?;
    (union.fill_ratio() < 0.95).then_some(union)
}

/// Widest single read used when relocating *Move* segments: chunks are
/// block-aligned and at most this many bytes.
const MOVE_READ_BYTES: u64 = 1 << 20;

/// One contiguous, block-aligned byte range of a *Move* segment.
/// Chunks are precomputed for the whole plan so their reads can be
/// issued asynchronously ahead of consumption, up to the configured
/// device queue depth.
#[derive(Debug, Clone, Copy)]
struct MoveChunk {
    /// Input run index.
    run: usize,
    /// Zone (block) range covered by this chunk.
    zone_lo: usize,
    zone_hi: usize,
    /// Absolute device offset of the first block.
    offset: u64,
    /// Total bytes spanned.
    span: u64,
}

/// Zero-decode compaction of block runs: the plan → execute pipeline.
///
/// The [`MergePlanner`] partitions the inputs' key space from their
/// zone maps alone. *Move* segments — blocks whose key range overlaps
/// no other input — are copied as raw verified bytes (CRC checked,
/// never delta-decoded) via [`RunBuilder::append_raw_block`]. Their
/// chunked reads execute **in parallel**: up to
/// [`MasmConfig::device_queue_depth`] chunk reads are kept in flight
/// (issued ahead, across consecutive segments), and the builder
/// consumes them strictly in plan order — the SSD overlaps the
/// transfers while the output stays byte-identical to the serial
/// execution. *Merge* segments are decoded through [`RunScan`]s (with
/// the prefetch depth driven by the plan's fan-in, so a k-way merge
/// keeps ≈k reads in flight) and **streamed** entry-at-a-time through
/// [`KWayUpdates`] into the builder, optionally collapsing duplicate
/// updates under `fold_guard` (§3.5 "Handling Skews": a pair folds
/// only when no concurrent query timestamp separates it). A merge
/// segment never materializes its output: the in-memory working set is
/// one head per input stream, one pending fold candidate, and the
/// builder's open block — `report.peak_merge_entries` records the
/// maximum, which §3.3's memory bound requires to stay independent of
/// the segment's total entry count.
///
/// Returns the built (un-rebased, un-written) output run metadata and
/// bytes plus the [`MergeReport`]; the caller allocates SSD space,
/// rebases, and writes — exactly like `build_run`. On fully disjoint
/// inputs `report.bytes_decoded == 0`: compaction cost is proportional
/// to overlap, not input size.
pub fn compact_block_runs(
    session: &SessionHandle,
    ssd: &SimDevice,
    cfg: &MasmConfig,
    schema: &Schema,
    inputs: &[Arc<SortedRun>],
    fold_guard: Option<&dyn Fn(Timestamp, Timestamp) -> bool>,
) -> MasmResult<(BlockRunMeta, Vec<u8>, MergeReport)> {
    let metas: Vec<&BlockRunMeta> = inputs.iter().map(|r| r.meta.as_ref()).collect();
    let plan = MergePlanner::new(&metas).plan();
    let depth = cfg.merge_prefetch_depth(plan.fan_in);
    let mut builder = RunBuilder::new(cfg.blockrun_config());
    let mut report = MergeReport {
        inputs: inputs.len(),
        fan_in: plan.fan_in,
        ..MergeReport::default()
    };

    // Blocks of one run are laid out back to back, so a move segment is
    // one contiguous byte range: precompute its wide chunks
    // (block-aligned, ≤ MOVE_READ_BYTES) for the *whole* plan up front.
    // `seg_chunks[i]` is the chunk index range owned by segment `i`
    // (empty for merge segments).
    let mut chunks: Vec<MoveChunk> = Vec::new();
    let mut seg_chunks: Vec<std::ops::Range<usize>> = Vec::with_capacity(plan.segments.len());
    for seg in &plan.segments {
        let lo = chunks.len();
        if let Segment::Move { run, blocks } = seg {
            let meta = &inputs[*run].meta;
            let mut idx = blocks.start;
            while idx < blocks.end {
                let first = meta.zones[idx];
                let mut end = idx + 1;
                while end < blocks.end {
                    let z = meta.zones[end];
                    debug_assert_eq!(
                        z.offset,
                        meta.zones[end - 1].offset + meta.zones[end - 1].len as u64,
                        "blocks of one run are contiguous"
                    );
                    if z.offset + z.len as u64 - first.offset > MOVE_READ_BYTES {
                        break;
                    }
                    end += 1;
                }
                let last = meta.zones[end - 1];
                chunks.push(MoveChunk {
                    run: *run,
                    zone_lo: idx,
                    zone_hi: end,
                    offset: meta.base + first.offset,
                    span: last.offset + last.len as u64 - first.offset,
                });
                idx = end;
            }
        }
        seg_chunks.push(lo..chunks.len());
    }

    // The move pipeline: chunk reads are issued asynchronously ahead of
    // consumption, keeping up to `device_queue_depth` in flight — also
    // across a merge segment, so the device overlaps the next move
    // segment's transfers with the merge's decode reads. Tickets are
    // awaited strictly in chunk order, so blocks reach the builder in
    // plan order regardless of completion order.
    let queue_depth = cfg.device_queue_depth.max(1);
    let mut inflight: VecDeque<IoTicket> = VecDeque::new();
    let mut next_issue = 0usize;

    for (seg_idx, seg) in plan.segments.iter().enumerate() {
        match seg {
            Segment::Move { .. } => {
                for ci in seg_chunks[seg_idx].clone() {
                    while next_issue <= ci
                        || (inflight.len() < queue_depth && next_issue < chunks.len())
                    {
                        let c = chunks[next_issue];
                        inflight.push_back(session.read_async(ssd, c.offset, c.span)?);
                        next_issue += 1;
                    }
                    let raw = session.wait(inflight.pop_front().expect("issued ahead"));
                    let c = chunks[ci];
                    let meta = &inputs[c.run].meta;
                    let first_off = meta.zones[c.zone_lo].offset;
                    for zone in &meta.zones[c.zone_lo..c.zone_hi] {
                        let lo = (zone.offset - first_off) as usize;
                        builder.append_raw_block(&raw[lo..lo + zone.len as usize], zone)?;
                        report.blocks_moved += 1;
                        report.bytes_moved += zone.len as u64;
                    }
                }
            }
            Segment::Merge {
                min_key,
                max_key,
                parts,
            } => {
                // Merge inputs bypass the block cache: each block is
                // read exactly once and the input runs are deleted
                // right after, so caching them would only evict
                // genuinely hot query blocks.
                let streams: Vec<UpdateStream> = parts
                    .iter()
                    .map(|(run_idx, _)| {
                        Box::new(
                            RunScan::new(
                                ssd.clone(),
                                session.clone(),
                                Arc::clone(&inputs[*run_idx]),
                                *min_key,
                                *max_key,
                            )
                            .with_prefetch_depth(depth),
                        ) as UpdateStream
                    })
                    .collect();
                for (run_idx, range) in parts {
                    for z in &inputs[*run_idx].meta.zones[range.clone()] {
                        report.blocks_merged += 1;
                        report.bytes_decoded += z.len as u64;
                    }
                }
                // Stream the k-way fold entry-at-a-time into the
                // builder (§3.3): the segment's merged output is never
                // materialized. `pending` holds the one candidate a
                // later same-key update may still fold into (same
                // consecutive-pair semantics as [`fold_duplicates`]);
                // it is appended the moment the key advances.
                let heads = parts.len();
                let mut pending: Option<UpdateRecord> = None;
                for next in KWayUpdates::new(streams) {
                    pending = Some(match pending.take() {
                        Some(cur)
                            if cur.key == next.key
                                && fold_guard.is_some_and(|g| g(cur.ts, next.ts)) =>
                        {
                            cur.merge_with_later(&next, schema)
                        }
                        Some(cur) => {
                            builder.append_entry(to_entry(&cur));
                            next
                        }
                        None => next,
                    });
                    let live = (heads + 1 + builder.open_block_entries()) as u64;
                    report.peak_merge_entries = report.peak_merge_entries.max(live);
                }
                if let Some(cur) = pending {
                    builder.append_entry(to_entry(&cur));
                }
            }
        }
    }

    report.entries_out = builder.entry_count();
    let (meta, bytes) = if builder.raw_blocks() == 0 {
        // Every key passed through the builder: an exact bloom filter.
        builder.finish()
    } else {
        // Moved keys were never observed; the union of the input
        // filters (when geometries align) covers them.
        let bloom = union_input_blooms(inputs);
        builder.finish_with_bloom(bloom)
    };
    Ok((meta, bytes, report))
}

/// `Merge_data_updates`: the outer join of the table range scan and the
/// merged update stream.
///
/// * data-only keys pass through;
/// * update-only keys materialize (insert/replace) or vanish
///   (delete/modify of a non-existent record);
/// * matching keys apply the update — unless the page's timestamp shows
///   the update was already migrated into the page (`u.ts ≤ page_ts`).
pub struct MergeDataUpdates<D, U>
where
    D: Iterator<Item = (Record, u64)>,
    U: Iterator<Item = UpdateRecord>,
{
    data: D,
    updates: U,
    schema: Schema,
    peeked_data: Option<(Record, u64)>,
    peeked_update: Option<UpdateRecord>,
    /// Records produced so far.
    produced: u64,
}

impl<D, U> MergeDataUpdates<D, U>
where
    D: Iterator<Item = (Record, u64)>,
    U: Iterator<Item = UpdateRecord>,
{
    /// Build the outer join.
    pub fn new(data: D, updates: U, schema: Schema) -> Self {
        MergeDataUpdates {
            data,
            updates,
            schema,
            peeked_data: None,
            peeked_update: None,
            produced: 0,
        }
    }

    fn peek_data(&mut self) -> Option<&(Record, u64)> {
        if self.peeked_data.is_none() {
            self.peeked_data = self.data.next();
        }
        self.peeked_data.as_ref()
    }

    fn peek_update(&mut self) -> Option<&UpdateRecord> {
        if self.peeked_update.is_none() {
            self.peeked_update = self.updates.next();
        }
        self.peeked_update.as_ref()
    }

    /// Records produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }
}

impl<D, U> Iterator for MergeDataUpdates<D, U>
where
    D: Iterator<Item = (Record, u64)>,
    U: Iterator<Item = UpdateRecord>,
{
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        loop {
            let dk = self.peek_data().map(|(r, _)| r.key);
            let uk = self.peek_update().map(|u| u.key);
            let out = match (dk, uk) {
                (None, None) => return None,
                (Some(_), None) => {
                    let (r, _) = self.peeked_data.take().expect("peeked");
                    Some(r)
                }
                (None, Some(_)) => {
                    let u = self.peeked_update.take().expect("peeked");
                    u.apply_to(None, &self.schema)
                }
                (Some(d), Some(u_key)) => {
                    if u_key < d {
                        let u = self.peeked_update.take().expect("peeked");
                        u.apply_to(None, &self.schema)
                    } else if u_key > d {
                        let (r, _) = self.peeked_data.take().expect("peeked");
                        Some(r)
                    } else {
                        let (r, page_ts) = self.peeked_data.take().expect("peeked");
                        let u = self.peeked_update.take().expect("peeked");
                        if u.ts > page_ts {
                            u.apply_to(Some(r), &self.schema)
                        } else {
                            // Already migrated into the page.
                            Some(r)
                        }
                    }
                }
            };
            if let Some(r) = out {
                self.produced += 1;
                return Some(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::{FieldPatch, UpdateOp};
    use masm_pagestore::{Field, FieldType};

    fn schema() -> Schema {
        Schema::new(vec![Field::new("v", FieldType::U32)])
    }

    fn payload(v: u32) -> Vec<u8> {
        v.to_le_bytes().to_vec()
    }

    fn ins(ts: Timestamp, key: Key, v: u32) -> UpdateRecord {
        UpdateRecord::new(ts, key, UpdateOp::Insert(payload(v)))
    }

    fn del(ts: Timestamp, key: Key) -> UpdateRecord {
        UpdateRecord::new(ts, key, UpdateOp::Delete)
    }

    fn modi(ts: Timestamp, key: Key, v: u32) -> UpdateRecord {
        UpdateRecord::new(
            ts,
            key,
            UpdateOp::Modify(vec![FieldPatch {
                field: 0,
                value: payload(v),
            }]),
        )
    }

    fn stream(us: Vec<UpdateRecord>) -> UpdateStream {
        Box::new(us.into_iter())
    }

    #[test]
    fn kway_merge_orders_and_folds() {
        let s1 = stream(vec![ins(1, 10, 1), modi(4, 20, 4)]);
        let s2 = stream(vec![modi(2, 10, 2), ins(3, 30, 3)]);
        let merged: Vec<UpdateRecord> =
            MergeUpdates::new(vec![s1, s2], schema(), u64::MAX).collect();
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].key, 10);
        // insert(1) + modify(2) folded into insert with patched payload.
        match &merged[0].op {
            UpdateOp::Insert(p) => assert_eq!(p, &payload(2)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(merged[1].key, 20);
        assert_eq!(merged[2].key, 30);
    }

    #[test]
    fn kway_raw_merge_preserves_all_versions() {
        let s1 = stream(vec![ins(1, 10, 1), modi(4, 10, 4)]);
        let s2 = stream(vec![modi(2, 10, 2)]);
        let got: Vec<(Key, Timestamp)> = KWayUpdates::new(vec![s1, s2])
            .map(|u| (u.key, u.ts))
            .collect();
        assert_eq!(got, vec![(10, 1), (10, 2), (10, 4)]);
    }

    #[test]
    fn merge_respects_as_of() {
        let s1 = stream(vec![ins(1, 10, 1), modi(5, 10, 5), ins(9, 20, 9)]);
        let merged: Vec<UpdateRecord> = MergeUpdates::new(vec![s1], schema(), 4).collect();
        // Only ts=1 visible for key 10; key 20 invisible entirely.
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].ts, 1);
        assert!(matches!(merged[0].op, UpdateOp::Insert(_)));
    }

    #[test]
    fn merge_empty_streams() {
        let merged: Vec<UpdateRecord> = MergeUpdates::new(vec![], schema(), u64::MAX).collect();
        assert!(merged.is_empty());
        let merged: Vec<UpdateRecord> =
            MergeUpdates::new(vec![stream(vec![])], schema(), u64::MAX).collect();
        assert!(merged.is_empty());
    }

    #[test]
    fn fold_duplicates_guarded() {
        let sorted = vec![ins(1, 10, 1), modi(3, 10, 3), modi(7, 10, 7)];
        // A query with ts=5 sits between 3 and 7: (3,7) must not fold.
        let folded = fold_duplicates(sorted, &schema(), |t1, t2| {
            let active = [5u64];
            !active.iter().any(|&t| t1 < t && t <= t2)
        });
        assert_eq!(folded.len(), 2);
        assert_eq!(folded[0].ts, 3); // 1+3 folded
        assert_eq!(folded[1].ts, 7);
    }

    #[test]
    fn fold_duplicates_unguarded_folds_all() {
        let sorted = vec![ins(1, 10, 1), del(2, 10), ins(3, 10, 3), del(9, 11)];
        let folded = fold_duplicates(sorted, &schema(), |_, _| true);
        assert_eq!(folded.len(), 2);
        assert!(matches!(folded[0].op, UpdateOp::Replace(_)));
        assert_eq!(folded[1].key, 11);
    }

    fn data(recs: Vec<(Key, u32, u64)>) -> impl Iterator<Item = (Record, u64)> {
        recs.into_iter()
            .map(|(k, v, ts)| (Record::new(k, payload(v)), ts))
    }

    #[test]
    fn outer_join_all_cases() {
        // Data: keys 10, 20, 30 (page_ts 0). Updates: delete 10, modify
        // 20, insert 15, modify 99 (no base).
        let updates = vec![
            del(1, 10),
            ins(2, 15, 150),
            modi(3, 20, 200),
            modi(4, 99, 990),
        ];
        let out: Vec<Record> = MergeDataUpdates::new(
            data(vec![(10, 1, 0), (20, 2, 0), (30, 3, 0)]),
            updates.into_iter(),
            schema(),
        )
        .collect();
        let keys: Vec<Key> = out.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![15, 20, 30]);
        let s = schema();
        assert_eq!(s.get_u32(&out[0].payload, 0), 150);
        assert_eq!(s.get_u32(&out[1].payload, 0), 200);
        assert_eq!(s.get_u32(&out[2].payload, 0), 3);
    }

    #[test]
    fn outer_join_trailing_inserts() {
        let updates = vec![ins(1, 100, 1), ins(2, 200, 2)];
        let out: Vec<Key> =
            MergeDataUpdates::new(data(vec![(10, 1, 0)]), updates.into_iter(), schema())
                .map(|r| r.key)
                .collect();
        assert_eq!(out, vec![10, 100, 200]);
    }

    #[test]
    fn outer_join_page_ts_skips_applied_updates() {
        // Page already carries the update (page_ts = 5 ≥ u.ts = 3).
        let updates = vec![modi(3, 10, 999)];
        let out: Vec<Record> =
            MergeDataUpdates::new(data(vec![(10, 1, 5)]), updates.into_iter(), schema()).collect();
        assert_eq!(schema().get_u32(&out[0].payload, 0), 1, "must not re-apply");
    }

    #[test]
    fn outer_join_empty_sides() {
        let out: Vec<Record> =
            MergeDataUpdates::new(data(vec![]), Vec::new().into_iter(), schema()).collect();
        assert!(out.is_empty());

        let out: Vec<Key> = MergeDataUpdates::new(
            data(vec![(1, 1, 0), (2, 2, 0)]),
            Vec::new().into_iter(),
            schema(),
        )
        .map(|r| r.key)
        .collect();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn outer_join_delete_of_missing_key_is_noop() {
        let updates = vec![del(1, 5)];
        let out: Vec<Key> =
            MergeDataUpdates::new(data(vec![(10, 1, 0)]), updates.into_iter(), schema())
                .map(|r| r.key)
                .collect();
        assert_eq!(out, vec![10]);
    }
}
