//! Error type for MaSM operations.

use std::fmt;

use masm_blockrun::BlockRunError;
use masm_storage::StorageError;

/// Errors surfaced by the MaSM engine.
#[derive(Debug)]
pub enum MasmError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// Block-run format failure (checksum mismatch, corrupt region).
    BlockRun(BlockRunError),
    /// The SSD update cache is full and migration is required.
    CacheFull {
        /// Bytes currently cached.
        cached: u64,
        /// Cache capacity in bytes.
        capacity: u64,
    },
    /// Corrupt or truncated on-SSD / WAL encoding.
    Corrupt(&'static str),
    /// A transaction conflict (first-committer-wins under snapshot
    /// isolation).
    Conflict {
        /// Key on which the conflict was detected.
        key: u64,
    },
    /// Invalid configuration.
    Config(String),
}

impl fmt::Display for MasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MasmError::Storage(e) => write!(f, "storage: {e}"),
            MasmError::BlockRun(e) => write!(f, "block run: {e}"),
            MasmError::CacheFull { cached, capacity } => {
                write!(
                    f,
                    "update cache full: {cached}/{capacity} bytes; migrate first"
                )
            }
            MasmError::Corrupt(what) => write!(f, "corrupt encoding: {what}"),
            MasmError::Conflict { key } => write!(f, "write-write conflict on key {key}"),
            MasmError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for MasmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MasmError::Storage(e) => Some(e),
            MasmError::BlockRun(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for MasmError {
    fn from(e: StorageError) -> Self {
        MasmError::Storage(e)
    }
}

impl From<BlockRunError> for MasmError {
    fn from(e: BlockRunError) -> Self {
        // Storage failures keep their own variant so callers can match
        // on them uniformly.
        match e {
            BlockRunError::Storage(s) => MasmError::Storage(s),
            other => MasmError::BlockRun(other),
        }
    }
}

/// Convenience alias.
pub type MasmResult<T> = Result<T, MasmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MasmError::CacheFull {
            cached: 9,
            capacity: 10
        }
        .to_string()
        .contains("9/10"));
        assert!(MasmError::Corrupt("run header")
            .to_string()
            .contains("run header"));
        assert!(MasmError::Conflict { key: 7 }.to_string().contains("key 7"));
    }

    #[test]
    fn from_storage_error() {
        let e: MasmError = StorageError::Faulted("x").into();
        assert!(matches!(e, MasmError::Storage(_)));
    }
}
