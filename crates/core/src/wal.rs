//! Redo logging and its record set (§3.2, §3.6 "Crash Recovery").
//!
//! MaSM's recovery story is deliberately small: materialized sorted runs
//! are already durable on the (non-volatile) SSD, so "typically, MaSM
//! needs to recover only the in-memory update buffer", plus enough
//! metadata to find the runs again and to redo an interrupted migration.
//! The log therefore carries:
//!
//! * committed update records (to rebuild the in-memory buffer),
//! * run lifecycle events (created at flush/merge, deleted at migration),
//! * migration begin/end markers, and per-chunk page-map splices so the
//!   heap's logical→physical map survives a crash mid-migration (in a
//!   production system this map lives in the catalog; logging the splice
//!   is the equivalent durable channel),
//! * the initial heap load.
//!
//! Data-page contents are **not** logged during migration — redo simply
//! re-runs the migration, and page timestamps make that idempotent.

use std::sync::atomic::{AtomicU64, Ordering};

use masm_pagestore::{ChunkCommit, Key};
use masm_storage::{SessionHandle, SimDevice};

use crate::error::{MasmError, MasmResult};
use crate::ts::Timestamp;
use crate::update::UpdateRecord;

/// One redo-log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A committed well-formed update.
    Update(UpdateRecord),
    /// A sorted run was materialized on the SSD.
    RunCreated {
        /// Run id.
        id: u64,
        /// SSD byte offset.
        base: u64,
        /// Encoded byte length.
        bytes: u64,
        /// Number of update records.
        count: u64,
        /// 1-pass or 2-pass.
        passes: u8,
        /// Highest update timestamp contained in the run. Recovery uses
        /// it to drop exactly the pending logged updates this run
        /// absorbed (`ts ≤ max_ts`): with background flushes, Update
        /// records for *newer* updates may be logged before the flush
        /// worker appends its RunCreated, so "clear everything logged
        /// so far" would lose them.
        max_ts: Timestamp,
    },
    /// Runs were deleted (after migration or a 2-pass merge).
    RunsDeleted(Vec<u64>),
    /// Migration started for the given runs.
    MigrationBegin {
        /// Migration timestamp `t`.
        ts: Timestamp,
        /// Ids of the runs being migrated.
        run_ids: Vec<u64>,
    },
    /// Migration finished.
    MigrationEnd {
        /// Migration timestamp `t`.
        ts: Timestamp,
    },
    /// The heap was bulk-loaded contiguously at `base`.
    HeapLoaded {
        /// Physical base offset.
        base: u64,
        /// Page size used.
        page_size: u32,
        /// Minimum key per page (defines the page count).
        min_keys: Vec<Key>,
        /// Total records loaded.
        record_count: u64,
    },
    /// A migration chunk committed a page-map splice.
    MapSplice(ChunkCommit),
}

fn put_u64s(out: &mut Vec<u8>, vals: &[u64]) {
    out.extend_from_slice(&(vals.len() as u32).to_le_bytes());
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn get_u64s(buf: &[u8], pos: &mut usize) -> Option<Vec<u64>> {
    let n = u32::from_le_bytes(buf.get(*pos..*pos + 4)?.try_into().ok()?) as usize;
    *pos += 4;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(u64::from_le_bytes(
            buf.get(*pos..*pos + 8)?.try_into().ok()?,
        ));
        *pos += 8;
    }
    Some(out)
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let v = u64::from_le_bytes(buf.get(*pos..*pos + 8)?.try_into().ok()?);
    *pos += 8;
    Some(v)
}

impl WalRecord {
    fn tag(&self) -> u8 {
        match self {
            WalRecord::Update(_) => 0,
            WalRecord::RunCreated { .. } => 1,
            WalRecord::RunsDeleted(_) => 2,
            WalRecord::MigrationBegin { .. } => 3,
            WalRecord::MigrationEnd { .. } => 4,
            WalRecord::HeapLoaded { .. } => 5,
            WalRecord::MapSplice(_) => 6,
        }
    }

    /// Encode as `[u32 body_len][u8 tag][body]`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let len_pos = out.len();
        out.extend_from_slice(&0u32.to_le_bytes());
        out.push(self.tag());
        let body_start = out.len();
        match self {
            WalRecord::Update(u) => u.encode_into(out),
            WalRecord::RunCreated {
                id,
                base,
                bytes,
                count,
                passes,
                max_ts,
            } => {
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&base.to_le_bytes());
                out.extend_from_slice(&bytes.to_le_bytes());
                out.extend_from_slice(&count.to_le_bytes());
                out.extend_from_slice(&max_ts.to_le_bytes());
                out.push(*passes);
            }
            WalRecord::RunsDeleted(ids) => put_u64s(out, ids),
            WalRecord::MigrationBegin { ts, run_ids } => {
                out.extend_from_slice(&ts.to_le_bytes());
                put_u64s(out, run_ids);
            }
            WalRecord::MigrationEnd { ts } => out.extend_from_slice(&ts.to_le_bytes()),
            WalRecord::HeapLoaded {
                base,
                page_size,
                min_keys,
                record_count,
            } => {
                out.extend_from_slice(&base.to_le_bytes());
                out.extend_from_slice(&page_size.to_le_bytes());
                out.extend_from_slice(&record_count.to_le_bytes());
                put_u64s(out, min_keys);
            }
            WalRecord::MapSplice(c) => {
                out.extend_from_slice(&(c.at as u64).to_le_bytes());
                out.extend_from_slice(&(c.n_old as u64).to_le_bytes());
                out.extend_from_slice(&c.base_phys.to_le_bytes());
                out.extend_from_slice(&(c.n_new as u64).to_le_bytes());
                out.extend_from_slice(&c.record_delta.to_le_bytes());
                put_u64s(out, &c.min_keys);
            }
        }
        let body_len = (out.len() - body_start) as u32;
        out[len_pos..len_pos + 4].copy_from_slice(&body_len.to_le_bytes());
    }

    /// Decode one record from the front of `buf`; returns it and the
    /// bytes consumed. `None` on a clean end (all zeros / empty), error
    /// on a torn record.
    pub fn decode(buf: &[u8]) -> MasmResult<Option<(WalRecord, usize)>> {
        if buf.len() < 5 {
            return Ok(None);
        }
        let body_len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        let tag = buf[4];
        if body_len == 0 && tag == 0 {
            return Ok(None); // zero padding = end of log
        }
        if buf.len() < 5 + body_len {
            return Err(MasmError::Corrupt("torn WAL record"));
        }
        let body = &buf[5..5 + body_len];
        let mut pos = 0usize;
        let rec = match tag {
            0 => {
                let (u, used) =
                    UpdateRecord::decode(body).ok_or(MasmError::Corrupt("WAL update"))?;
                if used != body_len {
                    return Err(MasmError::Corrupt("WAL update length"));
                }
                WalRecord::Update(u)
            }
            1 => WalRecord::RunCreated {
                id: get_u64(body, &mut pos).ok_or(MasmError::Corrupt("run id"))?,
                base: get_u64(body, &mut pos).ok_or(MasmError::Corrupt("run base"))?,
                bytes: get_u64(body, &mut pos).ok_or(MasmError::Corrupt("run bytes"))?,
                count: get_u64(body, &mut pos).ok_or(MasmError::Corrupt("run count"))?,
                max_ts: get_u64(body, &mut pos).ok_or(MasmError::Corrupt("run max_ts"))?,
                passes: *body.get(pos).ok_or(MasmError::Corrupt("run passes"))?,
            },
            2 => WalRecord::RunsDeleted(
                get_u64s(body, &mut pos).ok_or(MasmError::Corrupt("deleted ids"))?,
            ),
            3 => WalRecord::MigrationBegin {
                ts: get_u64(body, &mut pos).ok_or(MasmError::Corrupt("mig ts"))?,
                run_ids: get_u64s(body, &mut pos).ok_or(MasmError::Corrupt("mig runs"))?,
            },
            4 => WalRecord::MigrationEnd {
                ts: get_u64(body, &mut pos).ok_or(MasmError::Corrupt("mig end ts"))?,
            },
            5 => {
                let base = get_u64(body, &mut pos).ok_or(MasmError::Corrupt("load base"))?;
                let page_size = u32::from_le_bytes(
                    body.get(pos..pos + 4)
                        .ok_or(MasmError::Corrupt("load psize"))?
                        .try_into()
                        .unwrap(),
                );
                pos += 4;
                let record_count =
                    get_u64(body, &mut pos).ok_or(MasmError::Corrupt("load count"))?;
                let min_keys = get_u64s(body, &mut pos).ok_or(MasmError::Corrupt("load keys"))?;
                WalRecord::HeapLoaded {
                    base,
                    page_size,
                    min_keys,
                    record_count,
                }
            }
            6 => {
                let at = get_u64(body, &mut pos).ok_or(MasmError::Corrupt("splice at"))? as usize;
                let n_old =
                    get_u64(body, &mut pos).ok_or(MasmError::Corrupt("splice n_old"))? as usize;
                let base_phys = get_u64(body, &mut pos).ok_or(MasmError::Corrupt("splice base"))?;
                let n_new =
                    get_u64(body, &mut pos).ok_or(MasmError::Corrupt("splice n_new"))? as usize;
                let record_delta = i64::from_le_bytes(
                    body.get(pos..pos + 8)
                        .ok_or(MasmError::Corrupt("splice delta"))?
                        .try_into()
                        .unwrap(),
                );
                pos += 8;
                let min_keys = get_u64s(body, &mut pos).ok_or(MasmError::Corrupt("splice keys"))?;
                WalRecord::MapSplice(ChunkCommit {
                    at,
                    n_old,
                    base_phys,
                    n_new,
                    min_keys,
                    record_delta,
                })
            }
            _ => return Err(MasmError::Corrupt("unknown WAL tag")),
        };
        Ok(Some((rec, 5 + body_len)))
    }
}

/// An append-only redo log on a simulated device.
///
/// Appends take `&self`: the next write offset is an atomic that each
/// append *reserves* with `fetch_add` before issuing the device write.
/// Concurrent appenders (foreground ingest, background flush/migration
/// workers) therefore never hold an engine lock across the log I/O —
/// they claim disjoint byte ranges and write them in parallel.
#[derive(Debug)]
pub struct Wal {
    dev: SimDevice,
    offset: AtomicU64,
}

impl Wal {
    /// Open a (fresh or recovered) log on `dev`, appending after
    /// `offset` bytes of existing records.
    pub fn new(dev: SimDevice, offset: u64) -> Self {
        Wal {
            dev,
            offset: AtomicU64::new(offset),
        }
    }

    /// Append one record (a sequential device write charged to
    /// `session`). Lock-free: reserves the byte range atomically, then
    /// writes outside any engine lock.
    pub fn append(&self, session: &SessionHandle, rec: &WalRecord) -> MasmResult<()> {
        let mut buf = Vec::with_capacity(64);
        rec.encode_into(&mut buf);
        let off = self.offset.fetch_add(buf.len() as u64, Ordering::Relaxed);
        session.write(&self.dev, off, &buf)?;
        Ok(())
    }

    /// Current end offset.
    pub fn offset(&self) -> u64 {
        self.offset.load(Ordering::Relaxed)
    }

    /// The underlying device.
    pub fn device(&self) -> &SimDevice {
        &self.dev
    }

    /// Read every record from `dev` (recovery). Returns the records and
    /// the end offset for further appends.
    pub fn read_all(session: &SessionHandle, dev: &SimDevice) -> MasmResult<(Vec<WalRecord>, u64)> {
        let len = dev.len();
        if len == 0 {
            return Ok((Vec::new(), 0));
        }
        let buf = session.read(dev, 0, len)?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while let Some((rec, used)) = WalRecord::decode(&buf[pos..])? {
            out.push(rec);
            pos += used;
        }
        Ok((out, pos as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::UpdateOp;
    use masm_storage::{DeviceProfile, SimClock};

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Update(UpdateRecord::new(3, 7, UpdateOp::Insert(vec![1, 2, 3]))),
            WalRecord::Update(UpdateRecord::new(4, 8, UpdateOp::Delete)),
            WalRecord::RunCreated {
                id: 1,
                base: 0,
                bytes: 1234,
                count: 10,
                passes: 1,
                max_ts: 8,
            },
            WalRecord::RunsDeleted(vec![1, 2, 3]),
            WalRecord::MigrationBegin {
                ts: 99,
                run_ids: vec![4, 5],
            },
            WalRecord::MigrationEnd { ts: 99 },
            WalRecord::HeapLoaded {
                base: 0,
                page_size: 4096,
                min_keys: vec![0, 100, 200],
                record_count: 300,
            },
            WalRecord::MapSplice(ChunkCommit {
                at: 2,
                n_old: 3,
                base_phys: 8192,
                n_new: 4,
                min_keys: vec![10, 20, 30, 40],
                record_delta: -7,
            }),
        ]
    }

    #[test]
    fn encode_decode_roundtrip_all_variants() {
        for rec in sample_records() {
            let mut buf = Vec::new();
            rec.encode_into(&mut buf);
            let (back, used) = WalRecord::decode(&buf).unwrap().unwrap();
            assert_eq!(back, rec);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn torn_record_is_detected() {
        let rec = WalRecord::MigrationEnd { ts: 7 };
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        buf.truncate(buf.len() - 1);
        assert!(WalRecord::decode(&buf).is_err());
    }

    #[test]
    fn zero_padding_is_clean_end() {
        assert!(WalRecord::decode(&[0u8; 16]).unwrap().is_none());
        assert!(WalRecord::decode(&[]).unwrap().is_none());
    }

    #[test]
    fn wal_append_and_read_all() {
        let clock = SimClock::new();
        let dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let session = SessionHandle::fresh(clock);
        let wal = Wal::new(dev.clone(), 0);
        let records = sample_records();
        for r in &records {
            wal.append(&session, r).unwrap();
        }
        let (back, end) = Wal::read_all(&session, &dev).unwrap();
        assert_eq!(back, records);
        assert_eq!(end, wal.offset());
    }

    #[test]
    fn wal_writes_are_sequential() {
        let clock = SimClock::new();
        let dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let session = SessionHandle::fresh(clock);
        let wal = Wal::new(dev.clone(), 0);
        for i in 0..100u64 {
            wal.append(
                &session,
                &WalRecord::Update(UpdateRecord::new(i + 1, i, UpdateOp::Delete)),
            )
            .unwrap();
        }
        let stats = dev.stats();
        assert!(stats.random_writes <= 1, "{stats:?}");
    }
}
