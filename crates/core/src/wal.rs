//! Redo logging and its record set (§3.2, §3.6 "Crash Recovery").
//!
//! MaSM's recovery story is deliberately small: materialized sorted runs
//! are already durable on the (non-volatile) SSD, so "typically, MaSM
//! needs to recover only the in-memory update buffer", plus enough
//! metadata to find the runs again and to redo an interrupted migration.
//! The log therefore carries:
//!
//! * committed update records (to rebuild the in-memory buffer),
//! * run lifecycle events (created at flush/merge, deleted at migration),
//! * migration begin/end markers, and per-chunk page-map splices so the
//!   heap's logical→physical map survives a crash mid-migration (in a
//!   production system this map lives in the catalog; logging the splice
//!   is the equivalent durable channel),
//! * the initial heap load, and
//! * the shard manifest of a sharded deployment.
//!
//! Data-page contents are **not** logged during migration — redo simply
//! re-runs the migration, and page timestamps make that idempotent.
//!
//! # Record framing and torn tails
//!
//! Every record is framed as `[u32 body_len][u32 crc][u8 tag][body]`,
//! where the CRC-32 covers the tag and body. The CRC turns "the log
//! ends in garbage" from a guess into a verdict: [`Wal::replay`]
//! salvages the longest valid prefix and reports a cleanly *truncated*
//! torn tail when the damage is consistent with a crash mid-append (a
//! record that runs past the end of the log, or a CRC-failing record
//! followed only by zeroes), while a CRC failure in the *middle* of the
//! log — valid data beyond the bad record — cannot be a torn tail and
//! stays a hard error.
//!
//! # Durability of acknowledged appends
//!
//! Appends reserve disjoint byte ranges with an atomic `fetch_add` and
//! write them in parallel, so a later record can physically land before
//! an earlier one. If an append were acknowledged while an earlier
//! reservation was still in flight, a crash in that window would leave
//! a hole in front of an *acknowledged* record — and replay, which must
//! stop at the hole, would lose it. [`Wal::append`] therefore returns
//! only once the log is hole-free up to the record's end (the group
//! commit of a classical WAL): whatever was acknowledged is always in
//! the contiguous valid prefix that replay recovers.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

use masm_blockrun::crc32;
use masm_pagestore::{ChunkCommit, Key};
use masm_storage::{SessionHandle, SimDevice};
use parking_lot::{Condvar, Mutex};

use crate::error::{MasmError, MasmResult};
use crate::manifest::ShardManifest;
use crate::ts::Timestamp;
use crate::update::UpdateRecord;

/// Framing header bytes: `[u32 body_len][u32 crc][u8 tag]`.
const HEADER: usize = 9;

/// One redo-log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A committed well-formed update.
    Update(UpdateRecord),
    /// A sorted run was materialized on the SSD.
    RunCreated {
        /// Run id.
        id: u64,
        /// SSD byte offset.
        base: u64,
        /// Encoded byte length.
        bytes: u64,
        /// Number of update records.
        count: u64,
        /// 1-pass or 2-pass.
        passes: u8,
        /// Highest update timestamp contained in the run. Recovery uses
        /// it to drop exactly the pending logged updates this run
        /// absorbed (`ts ≤ max_ts`): with background flushes, Update
        /// records for *newer* updates may be logged before the flush
        /// worker appends its RunCreated, so "clear everything logged
        /// so far" would lose them.
        max_ts: Timestamp,
    },
    /// Runs were deleted (after migration or a 2-pass merge).
    RunsDeleted(Vec<u64>),
    /// Migration started for the given runs.
    MigrationBegin {
        /// Migration timestamp `t`.
        ts: Timestamp,
        /// Ids of the runs being migrated.
        run_ids: Vec<u64>,
    },
    /// Migration finished.
    MigrationEnd {
        /// Migration timestamp `t`.
        ts: Timestamp,
    },
    /// The heap was bulk-loaded contiguously at `base`.
    HeapLoaded {
        /// Global heap-event sequence number (drawn from the timestamp
        /// oracle). Orders loads and splices across the WALs of a
        /// sharded deployment; a load broadcast to several shard WALs
        /// carries the *same* seq in every copy, so multi-log replay
        /// deduplicates it.
        seq: u64,
        /// Physical base offset.
        base: u64,
        /// Page size used.
        page_size: u32,
        /// Minimum key per page (defines the page count).
        min_keys: Vec<Key>,
        /// Total records loaded.
        record_count: u64,
    },
    /// A migration chunk committed a page-map splice.
    MapSplice {
        /// Global heap-event sequence number (see
        /// [`WalRecord::HeapLoaded::seq`]): sharded recovery replays
        /// splices from all shard WALs in one global order.
        seq: u64,
        /// The logged splice.
        commit: ChunkCommit,
    },
    /// The shard manifest of a sharded deployment (appended to every
    /// shard's WAL at construction; see [`ShardManifest`]).
    Manifest(ShardManifest),
}

fn put_u64s(out: &mut Vec<u8>, vals: &[u64]) {
    out.extend_from_slice(&(vals.len() as u32).to_le_bytes());
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn get_u64s(buf: &[u8], pos: &mut usize) -> Option<Vec<u64>> {
    let n = u32::from_le_bytes(buf.get(*pos..*pos + 4)?.try_into().ok()?) as usize;
    *pos += 4;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(u64::from_le_bytes(
            buf.get(*pos..*pos + 8)?.try_into().ok()?,
        ));
        *pos += 8;
    }
    Some(out)
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let v = u64::from_le_bytes(buf.get(*pos..*pos + 8)?.try_into().ok()?);
    *pos += 8;
    Some(v)
}

/// One framing step of [`Wal::replay`].
enum Framed<'a> {
    /// Clean end of the log (empty or zero padding to the end).
    End,
    /// The buffer ends inside a record (or inside a header), or a zero
    /// hole is followed by more data: a torn tail.
    Torn,
    /// A whole record extent is present but its CRC fails. `extent` is
    /// the claimed record length, so the caller can check what follows.
    BadCrc {
        /// Claimed total record length (header + body).
        extent: usize,
    },
    /// A CRC-valid record.
    Record {
        /// Record tag.
        tag: u8,
        /// Record body.
        body: &'a [u8],
        /// Total bytes consumed (header + body).
        used: usize,
    },
}

/// Frame one record at the front of `buf` without decoding its body.
fn frame(buf: &[u8]) -> Framed<'_> {
    // All-zero remainder (including empty) is clean padding. For real
    // records this check exits at the first nonzero header byte.
    if buf.iter().all(|&b| b == 0) {
        return Framed::End;
    }
    if buf.len() < HEADER {
        return Framed::Torn;
    }
    let body_len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let tag = buf[8];
    if body_len == 0 && crc == 0 && tag == 0 {
        // A zero hole *followed by data*: an unwritten reservation in
        // front of records whose appends never returned. Everything
        // from here on was unacknowledged — torn tail.
        return Framed::Torn;
    }
    let extent = HEADER + body_len;
    if buf.len() < extent {
        return Framed::Torn;
    }
    if crc32(&buf[8..extent]) != crc {
        return Framed::BadCrc { extent };
    }
    Framed::Record {
        tag,
        body: &buf[HEADER..extent],
        used: extent,
    }
}

impl WalRecord {
    fn tag(&self) -> u8 {
        match self {
            WalRecord::Update(_) => 0,
            WalRecord::RunCreated { .. } => 1,
            WalRecord::RunsDeleted(_) => 2,
            WalRecord::MigrationBegin { .. } => 3,
            WalRecord::MigrationEnd { .. } => 4,
            WalRecord::HeapLoaded { .. } => 5,
            WalRecord::MapSplice { .. } => 6,
            WalRecord::Manifest(_) => 7,
        }
    }

    /// Encode as `[u32 body_len][u32 crc][u8 tag][body]` (CRC over tag
    /// and body).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let len_pos = out.len();
        out.extend_from_slice(&0u32.to_le_bytes()); // body_len placeholder
        out.extend_from_slice(&0u32.to_le_bytes()); // crc placeholder
        out.push(self.tag());
        let body_start = out.len();
        match self {
            WalRecord::Update(u) => u.encode_into(out),
            WalRecord::RunCreated {
                id,
                base,
                bytes,
                count,
                passes,
                max_ts,
            } => {
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&base.to_le_bytes());
                out.extend_from_slice(&bytes.to_le_bytes());
                out.extend_from_slice(&count.to_le_bytes());
                out.extend_from_slice(&max_ts.to_le_bytes());
                out.push(*passes);
            }
            WalRecord::RunsDeleted(ids) => put_u64s(out, ids),
            WalRecord::MigrationBegin { ts, run_ids } => {
                out.extend_from_slice(&ts.to_le_bytes());
                put_u64s(out, run_ids);
            }
            WalRecord::MigrationEnd { ts } => out.extend_from_slice(&ts.to_le_bytes()),
            WalRecord::HeapLoaded {
                seq,
                base,
                page_size,
                min_keys,
                record_count,
            } => {
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&base.to_le_bytes());
                out.extend_from_slice(&page_size.to_le_bytes());
                out.extend_from_slice(&record_count.to_le_bytes());
                put_u64s(out, min_keys);
            }
            WalRecord::MapSplice { seq, commit: c } => {
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(c.at as u64).to_le_bytes());
                out.extend_from_slice(&(c.n_old as u64).to_le_bytes());
                out.extend_from_slice(&c.base_phys.to_le_bytes());
                out.extend_from_slice(&(c.n_new as u64).to_le_bytes());
                out.extend_from_slice(&c.record_delta.to_le_bytes());
                put_u64s(out, &c.min_keys);
            }
            WalRecord::Manifest(m) => out.extend_from_slice(&m.encode()),
        }
        let body_len = (out.len() - body_start) as u32;
        out[len_pos..len_pos + 4].copy_from_slice(&body_len.to_le_bytes());
        let crc = crc32(&out[len_pos + 8..]);
        out[len_pos + 4..len_pos + 8].copy_from_slice(&crc.to_le_bytes());
    }

    /// Decode a CRC-verified record body. The framing CRC has already
    /// vouched for these bytes, so any failure here is real corruption
    /// (or an unknown record version) — always a hard error.
    fn decode_body(tag: u8, body: &[u8]) -> MasmResult<WalRecord> {
        let body_len = body.len();
        let mut pos = 0usize;
        let rec = match tag {
            0 => {
                let (u, used) =
                    UpdateRecord::decode(body).ok_or(MasmError::Corrupt("WAL update"))?;
                if used != body_len {
                    return Err(MasmError::Corrupt("WAL update length"));
                }
                WalRecord::Update(u)
            }
            1 => WalRecord::RunCreated {
                id: get_u64(body, &mut pos).ok_or(MasmError::Corrupt("run id"))?,
                base: get_u64(body, &mut pos).ok_or(MasmError::Corrupt("run base"))?,
                bytes: get_u64(body, &mut pos).ok_or(MasmError::Corrupt("run bytes"))?,
                count: get_u64(body, &mut pos).ok_or(MasmError::Corrupt("run count"))?,
                max_ts: get_u64(body, &mut pos).ok_or(MasmError::Corrupt("run max_ts"))?,
                passes: *body.get(pos).ok_or(MasmError::Corrupt("run passes"))?,
            },
            2 => WalRecord::RunsDeleted(
                get_u64s(body, &mut pos).ok_or(MasmError::Corrupt("deleted ids"))?,
            ),
            3 => WalRecord::MigrationBegin {
                ts: get_u64(body, &mut pos).ok_or(MasmError::Corrupt("mig ts"))?,
                run_ids: get_u64s(body, &mut pos).ok_or(MasmError::Corrupt("mig runs"))?,
            },
            4 => WalRecord::MigrationEnd {
                ts: get_u64(body, &mut pos).ok_or(MasmError::Corrupt("mig end ts"))?,
            },
            5 => {
                let seq = get_u64(body, &mut pos).ok_or(MasmError::Corrupt("load seq"))?;
                let base = get_u64(body, &mut pos).ok_or(MasmError::Corrupt("load base"))?;
                let page_size = u32::from_le_bytes(
                    body.get(pos..pos + 4)
                        .ok_or(MasmError::Corrupt("load psize"))?
                        .try_into()
                        .unwrap(),
                );
                pos += 4;
                let record_count =
                    get_u64(body, &mut pos).ok_or(MasmError::Corrupt("load count"))?;
                let min_keys = get_u64s(body, &mut pos).ok_or(MasmError::Corrupt("load keys"))?;
                WalRecord::HeapLoaded {
                    seq,
                    base,
                    page_size,
                    min_keys,
                    record_count,
                }
            }
            6 => {
                let seq = get_u64(body, &mut pos).ok_or(MasmError::Corrupt("splice seq"))?;
                let at = get_u64(body, &mut pos).ok_or(MasmError::Corrupt("splice at"))? as usize;
                let n_old =
                    get_u64(body, &mut pos).ok_or(MasmError::Corrupt("splice n_old"))? as usize;
                let base_phys = get_u64(body, &mut pos).ok_or(MasmError::Corrupt("splice base"))?;
                let n_new =
                    get_u64(body, &mut pos).ok_or(MasmError::Corrupt("splice n_new"))? as usize;
                let record_delta = i64::from_le_bytes(
                    body.get(pos..pos + 8)
                        .ok_or(MasmError::Corrupt("splice delta"))?
                        .try_into()
                        .unwrap(),
                );
                pos += 8;
                let min_keys = get_u64s(body, &mut pos).ok_or(MasmError::Corrupt("splice keys"))?;
                WalRecord::MapSplice {
                    seq,
                    commit: ChunkCommit {
                        at,
                        n_old,
                        base_phys,
                        n_new,
                        min_keys,
                        record_delta,
                    },
                }
            }
            7 => WalRecord::Manifest(ShardManifest::decode(body)?),
            _ => return Err(MasmError::Corrupt("unknown WAL tag")),
        };
        Ok(rec)
    }

    /// Decode one record from the front of `buf`; returns it and the
    /// bytes consumed. `None` on a clean end (all zeros / empty), error
    /// on a torn or corrupt record. For whole-log reading with torn-tail
    /// salvage, use [`Wal::replay`].
    pub fn decode(buf: &[u8]) -> MasmResult<Option<(WalRecord, usize)>> {
        match frame(buf) {
            Framed::End => Ok(None),
            Framed::Torn => Err(MasmError::Corrupt("torn WAL record")),
            Framed::BadCrc { .. } => Err(MasmError::Corrupt("WAL record CRC mismatch")),
            Framed::Record { tag, body, used } => Ok(Some((Self::decode_body(tag, body)?, used))),
        }
    }
}

/// Outcome of reading a whole redo log back ([`Wal::replay`]).
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    /// The records of the longest valid log prefix, in log order.
    pub records: Vec<WalRecord>,
    /// Byte offset where that prefix ends — the append point for a
    /// [`Wal::new`] over the same device.
    pub end_offset: u64,
    /// Bytes discarded beyond `end_offset` because the tail was torn
    /// (0 = the log ended cleanly). Truncation happens by overwrite:
    /// the recovered log appends at `end_offset`, burying the garbage.
    pub torn_bytes: u64,
}

impl WalReplay {
    /// Whether a torn tail was truncated.
    #[must_use]
    pub fn torn(&self) -> bool {
        self.torn_bytes > 0
    }
}

/// Write-completion tracking behind [`Wal::append`]'s group commit:
/// completed reservations merge into a contiguous stable prefix.
#[derive(Debug)]
struct TailState {
    /// The log is hole-free up to here.
    stable: u64,
    /// Completed `(start, end)` ranges not yet merged into `stable`.
    completed: BinaryHeap<Reverse<(u64, u64)>>,
}

/// An append-only redo log on a simulated device.
///
/// Appends take `&self`: the next write offset is an atomic that each
/// append *reserves* with `fetch_add` before issuing the device write.
/// Concurrent appenders (foreground ingest, background flush/migration
/// workers) therefore never hold an engine lock across the log I/O —
/// they claim disjoint byte ranges and write them in parallel. An
/// append returns only once the log is hole-free up to its record (see
/// the module docs on durability of acknowledged appends).
#[derive(Debug)]
pub struct Wal {
    dev: SimDevice,
    offset: AtomicU64,
    tail: Mutex<TailState>,
    stable_cv: Condvar,
}

impl Wal {
    /// Open a (fresh or recovered) log on `dev`, appending after
    /// `offset` bytes of existing records.
    pub fn new(dev: SimDevice, offset: u64) -> Self {
        Wal {
            dev,
            offset: AtomicU64::new(offset),
            tail: Mutex::new(TailState {
                stable: offset,
                completed: BinaryHeap::new(),
            }),
            stable_cv: Condvar::new(),
        }
    }

    /// Append one record (a sequential device write charged to
    /// `session`). Lock-free range reservation, parallel writes; the
    /// *return* is the group commit — it happens only once every
    /// earlier reservation has also hit the device, so an acknowledged
    /// record can never sit behind a crash hole.
    pub fn append(&self, session: &SessionHandle, rec: &WalRecord) -> MasmResult<()> {
        let mut buf = Vec::with_capacity(64);
        rec.encode_into(&mut buf);
        let off = self.offset.fetch_add(buf.len() as u64, Ordering::Relaxed);
        let end = off + buf.len() as u64;
        let wrote = session.write(&self.dev, off, &buf);
        {
            // Mark the reservation complete even on a failed write (the
            // bytes are then absent or torn and recovery truncates
            // them): a skipped completion would wedge every later
            // appender behind a hole that will never fill.
            let mut tail = self.tail.lock();
            tail.completed.push(Reverse((off, end)));
            while tail
                .completed
                .peek()
                .is_some_and(|Reverse((start, _))| *start <= tail.stable)
            {
                let Reverse((_, e)) = tail.completed.pop().expect("peeked");
                tail.stable = tail.stable.max(e);
            }
            if wrote.is_ok() {
                while tail.stable < end {
                    self.stable_cv.wait(&mut tail);
                }
            }
        }
        self.stable_cv.notify_all();
        wrote?;
        Ok(())
    }

    /// Current end offset (reserved; may be ahead of the stable prefix
    /// while appends are in flight).
    pub fn offset(&self) -> u64 {
        self.offset.load(Ordering::Relaxed)
    }

    /// Offset up to which the log is hole-free (every returned
    /// [`Wal::append`] is below this).
    pub fn stable_offset(&self) -> u64 {
        self.tail.lock().stable
    }

    /// The underlying device.
    pub fn device(&self) -> &SimDevice {
        &self.dev
    }

    /// Read the longest valid record prefix from `dev` (crash
    /// recovery). A torn tail — a record cut off by the end of the log,
    /// or a CRC-failing final record followed only by zeroes — is
    /// *salvaged around*: the valid prefix comes back with
    /// [`WalReplay::torn_bytes`] counting what was dropped. A CRC
    /// failure with valid-looking data beyond it is not a torn tail and
    /// fails hard ([`MasmError::Corrupt`]), as does a record whose CRC
    /// passes but whose body is malformed.
    pub fn replay(session: &SessionHandle, dev: &SimDevice) -> MasmResult<WalReplay> {
        let len = dev.len();
        if len == 0 {
            return Ok(WalReplay::default());
        }
        let buf = session.read(dev, 0, len)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        let torn = loop {
            match frame(&buf[pos..]) {
                Framed::End => break false,
                Framed::Torn => break true,
                Framed::BadCrc { extent } => {
                    if buf[pos + extent..].iter().all(|&b| b == 0) {
                        // Final record, partially persisted: torn tail.
                        break true;
                    }
                    return Err(MasmError::Corrupt("WAL record CRC mismatch mid-log"));
                }
                Framed::Record { tag, body, used } => {
                    records.push(WalRecord::decode_body(tag, body)?);
                    pos += used;
                }
            }
        };
        let torn_bytes = if torn { len - pos as u64 } else { 0 };
        Ok(WalReplay {
            records,
            end_offset: pos as u64,
            torn_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::UpdateOp;
    use masm_storage::{DeviceProfile, SimClock};

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Update(UpdateRecord::new(3, 7, UpdateOp::Insert(vec![1, 2, 3]))),
            WalRecord::Update(UpdateRecord::new(4, 8, UpdateOp::Delete)),
            WalRecord::RunCreated {
                id: 1,
                base: 0,
                bytes: 1234,
                count: 10,
                passes: 1,
                max_ts: 8,
            },
            WalRecord::RunsDeleted(vec![1, 2, 3]),
            WalRecord::MigrationBegin {
                ts: 99,
                run_ids: vec![4, 5],
            },
            WalRecord::MigrationEnd { ts: 99 },
            WalRecord::HeapLoaded {
                seq: 41,
                base: 0,
                page_size: 4096,
                min_keys: vec![0, 100, 200],
                record_count: 300,
            },
            WalRecord::MapSplice {
                seq: 42,
                commit: ChunkCommit {
                    at: 2,
                    n_old: 3,
                    base_phys: 8192,
                    n_new: 4,
                    min_keys: vec![10, 20, 30, 40],
                    record_delta: -7,
                },
            },
            WalRecord::Manifest(ShardManifest {
                shards: 2,
                shard_id: 1,
                split_keys: vec![500],
                ssd_region_base: 0,
                config_fingerprint: 77,
            }),
        ]
    }

    fn wal_fixture() -> (SimDevice, SessionHandle, Wal) {
        let clock = SimClock::new();
        let dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let session = SessionHandle::fresh(clock);
        let wal = Wal::new(dev.clone(), 0);
        (dev, session, wal)
    }

    #[test]
    fn encode_decode_roundtrip_all_variants() {
        for rec in sample_records() {
            let mut buf = Vec::new();
            rec.encode_into(&mut buf);
            let (back, used) = WalRecord::decode(&buf).unwrap().unwrap();
            assert_eq!(back, rec);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn torn_record_is_detected() {
        let rec = WalRecord::MigrationEnd { ts: 7 };
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        buf.truncate(buf.len() - 1);
        assert!(WalRecord::decode(&buf).is_err());
    }

    #[test]
    fn crc_catches_a_flipped_bit() {
        let rec = WalRecord::MigrationEnd { ts: 7 };
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        assert!(WalRecord::decode(&buf).is_err());
    }

    #[test]
    fn zero_padding_is_clean_end() {
        assert!(WalRecord::decode(&[0u8; 16]).unwrap().is_none());
        assert!(WalRecord::decode(&[]).unwrap().is_none());
    }

    #[test]
    fn wal_append_and_replay() {
        let (dev, session, wal) = wal_fixture();
        let records = sample_records();
        for r in &records {
            wal.append(&session, r).unwrap();
        }
        let replay = Wal::replay(&session, &dev).unwrap();
        assert_eq!(replay.records, records);
        assert_eq!(replay.end_offset, wal.offset());
        assert_eq!(wal.stable_offset(), wal.offset());
        assert!(!replay.torn());
    }

    #[test]
    fn replay_salvages_torn_tail_at_every_cut() {
        let (dev, session, wal) = wal_fixture();
        let records = sample_records();
        let mut boundaries = vec![0u64];
        for r in &records {
            wal.append(&session, r).unwrap();
            boundaries.push(wal.offset());
        }
        let end = wal.offset();
        let clock = SimClock::new();
        for cut in 0..=end {
            let snap = dev.snapshot_prefix(clock.clone(), cut).unwrap();
            let replay = Wal::replay(&session, &snap).unwrap();
            // The salvaged prefix is exactly the whole records below the
            // cut; everything mid-record is reported as torn.
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(replay.records.len(), whole, "cut at {cut}");
            assert_eq!(replay.records[..], records[..whole], "cut at {cut}");
            assert_eq!(replay.end_offset, boundaries[whole], "cut at {cut}");
            assert_eq!(replay.torn_bytes, cut - boundaries[whole], "cut at {cut}");
        }
    }

    #[test]
    fn replay_truncates_partially_persisted_final_record() {
        let (dev, session, wal) = wal_fixture();
        wal.append(&session, &WalRecord::MigrationEnd { ts: 1 })
            .unwrap();
        let keep = wal.offset();
        // A torn device write persists only the first 3 bytes of the
        // next record; the rest of its extent stays zero.
        dev.inject_torn_write(3);
        assert!(wal
            .append(&session, &WalRecord::MigrationEnd { ts: 2 })
            .is_err());
        dev.clear_write_fault();
        let replay = Wal::replay(&session, &dev).unwrap();
        assert_eq!(replay.records, vec![WalRecord::MigrationEnd { ts: 1 }]);
        assert_eq!(replay.end_offset, keep);
        assert!(replay.torn());
    }

    #[test]
    fn replay_rejects_midlog_corruption() {
        let (dev, session, wal) = wal_fixture();
        for r in sample_records() {
            wal.append(&session, &r).unwrap();
        }
        // Flip a byte in the middle of the log: valid records follow,
        // so this cannot be a torn tail.
        let (mut bytes, _) = dev.read_at(0, 10, 1).unwrap();
        bytes[0] ^= 0xFF;
        dev.write_at(dev.busy_until(), 10, &bytes).unwrap();
        assert!(Wal::replay(&session, &dev).is_err());
    }

    #[test]
    fn concurrent_appends_leave_no_holes() {
        let (dev, session, wal) = wal_fixture();
        let wal = std::sync::Arc::new(wal);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let wal = std::sync::Arc::clone(&wal);
                let session = session.clone();
                s.spawn(move || {
                    for i in 0..50u64 {
                        wal.append(
                            &session,
                            &WalRecord::Update(UpdateRecord::new(
                                t * 1000 + i + 1,
                                t * 1000 + i,
                                UpdateOp::Delete,
                            )),
                        )
                        .unwrap();
                    }
                });
            }
        });
        // Acknowledged appends form a hole-free prefix covering the log.
        assert_eq!(wal.stable_offset(), wal.offset());
        let replay = Wal::replay(&session, &dev).unwrap();
        assert_eq!(replay.records.len(), 200);
        assert!(!replay.torn());
    }

    #[test]
    fn wal_writes_are_sequential() {
        let (dev, session, wal) = wal_fixture();
        for i in 0..100u64 {
            wal.append(
                &session,
                &WalRecord::Update(UpdateRecord::new(i + 1, i, UpdateOp::Delete)),
            )
            .unwrap();
        }
        let stats = dev.stats();
        assert!(stats.random_writes <= 1, "{stats:?}");
    }
}
