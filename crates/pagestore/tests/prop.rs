//! Property-based tests for the pagestore substrate.

use std::sync::Arc;

use proptest::prelude::*;

use masm_pagestore::{HeapConfig, Page, Record, SparseIndex, TableHeap};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};

fn record_strategy() -> impl Strategy<Value = Record> {
    (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..200))
        .prop_map(|(key, payload)| Record::new(key, payload))
}

proptest! {
    /// Any set of records that fits in a page round-trips through the
    /// slotted layout byte-identically.
    #[test]
    fn page_roundtrip(mut records in proptest::collection::vec(record_strategy(), 0..30)) {
        records.sort_by_key(|r| r.key);
        let mut page = Page::new(8192);
        let mut stored = Vec::new();
        for r in &records {
            if page.append(r) {
                stored.push(r.clone());
            }
        }
        let bytes = page.clone().into_bytes();
        let back = Page::from_bytes(bytes);
        let got: Vec<Record> = back.records().collect();
        prop_assert_eq!(got, stored);
    }

    /// Page binary search agrees with a linear scan.
    #[test]
    fn page_find_agrees_with_linear(keys in proptest::collection::btree_set(0u64..500, 1..30),
                                    probe in 0u64..500) {
        let mut page = Page::new(8192);
        for &k in &keys {
            page.append(&Record::new(k, vec![1]));
        }
        match page.find(probe) {
            Ok(slot) => prop_assert_eq!(page.key_at(slot), probe),
            Err(_) => prop_assert!(!keys.contains(&probe)),
        }
    }

    /// SparseIndex::locate returns the page a linear search would.
    #[test]
    fn sparse_index_locate(mins in proptest::collection::vec(0u64..1000, 1..50),
                           probe in 0u64..1100) {
        let mut mins = mins;
        mins.sort_unstable();
        let idx = SparseIndex::new(mins.clone());
        let got = idx.locate(probe).unwrap();
        // Linear reference: last page whose min <= probe, else 0.
        let want = mins
            .iter()
            .rposition(|&m| m <= probe)
            .unwrap_or(0);
        prop_assert_eq!(got, want);
    }

    /// Heap range scans agree with an in-memory model for arbitrary
    /// (sorted, deduplicated) loads and arbitrary query ranges.
    #[test]
    fn heap_scan_matches_model(keys in proptest::collection::btree_set(0u64..5000, 1..300),
                               ranges in proptest::collection::vec((0u64..5000, 0u64..5000), 1..8)) {
        let clock = SimClock::new();
        let dev = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let heap = Arc::new(TableHeap::new(dev, HeapConfig::default()));
        let session = SessionHandle::fresh(clock);
        let records: Vec<Record> = keys.iter().map(|&k| Record::synthetic(k, 50)).collect();
        heap.bulk_load(&session, records.clone(), 1.0).unwrap();
        for (a, b) in ranges {
            let (begin, end) = (a.min(b), a.max(b));
            let got: Vec<u64> = heap
                .scan_range(session.clone(), begin, end)
                .map(|r| r.key)
                .collect();
            let want: Vec<u64> = keys.range(begin..=end).copied().collect();
            prop_assert_eq!(got, want);
        }
    }
}
