//! Clustered table heap over a simulated device.
//!
//! * Records are clustered in primary-key order; a [`SparseIndex`] maps
//!   keys to logical pages.
//! * Logical pages are translated to physical byte offsets through a page
//!   map, so MaSM's in-place migration can replace chunks of pages without
//!   doubling storage (§3.2 "in-place migration", cases (i) and (ii)).
//! * Range scans ([`TableHeap::scan_range`]) read batches of up to
//!   [`HeapConfig::scan_io`] bytes (1 MB by default, matching §4.1) with
//!   asynchronous prefetch of the next batch, and locate batches **by
//!   key**, so a concurrent chunk-wise rewrite cannot make a scan skip or
//!   repeat records.
//! * [`HeapRewriter`] implements chunked copy-forward rewrite: read a
//!   chunk of old pages, let the caller merge updates into new pages,
//!   write the new chunk sequentially (preferring physical slots freed by
//!   already-committed chunks), and splice the page map. Peak extra space
//!   is one chunk, not a full table copy.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use masm_storage::clock::Ns;
use masm_storage::{IoTicket, SessionHandle, SimDevice, StorageResult, MIB};

use crate::index::SparseIndex;
use crate::page::Page;
use crate::record::{Key, Record};

/// Tuning knobs of a table heap.
#[derive(Debug, Clone)]
pub struct HeapConfig {
    /// Page size in bytes (the paper's disk pages are 4 KB).
    pub page_size: usize,
    /// Preferred I/O size for range scans (1 MB in §4.1).
    pub scan_io: u64,
    /// Pages per rewrite chunk during migration.
    pub rewrite_chunk_pages: usize,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            page_size: 4096,
            scan_io: MIB,
            // 4 MiB chunks: large enough that the read/write head
            // alternation of a rewrite costs little relative to the
            // transfers (the paper's migration lands at ~2.3x a scan).
            rewrite_chunk_pages: 1024,
        }
    }
}

#[derive(Debug, Default)]
struct HeapState {
    /// Logical page -> physical byte offset.
    page_map: Vec<u64>,
    index: SparseIndex,
    record_count: u64,
}

#[derive(Debug, Default)]
struct Allocator {
    /// Next fresh physical offset (end of allocated space).
    next: u64,
    /// Freed physical page offsets available for reuse, kept sorted.
    free: Vec<u64>,
}

impl Allocator {
    /// Allocate `n` physically contiguous page slots of `page_size` bytes.
    /// Prefers a contiguous run from the free pool; falls back to fresh
    /// space at the end.
    fn alloc_contiguous(&mut self, n: usize, page_size: u64) -> u64 {
        if n == 0 {
            return self.next;
        }
        if self.free.len() >= n {
            // Find the first ascending run of length n with stride page_size.
            let mut run_start = 0usize;
            for i in 1..=self.free.len() {
                if i == self.free.len() || self.free[i] != self.free[i - 1] + page_size {
                    if i - run_start >= n {
                        let offset = self.free[run_start];
                        self.free.drain(run_start..run_start + n);
                        return offset;
                    }
                    run_start = i;
                }
            }
        }
        let offset = self.next;
        self.next += n as u64 * page_size;
        offset
    }

    fn free_pages(&mut self, offsets: impl IntoIterator<Item = u64>) {
        self.free.extend(offsets);
        self.free.sort_unstable();
        self.free.dedup();
    }
}

/// A clustered, page-mapped table heap.
pub struct TableHeap {
    dev: SimDevice,
    cfg: HeapConfig,
    state: RwLock<HeapState>,
    alloc: Mutex<Allocator>,
}

impl std::fmt::Debug for TableHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.read();
        f.debug_struct("TableHeap")
            .field("pages", &st.page_map.len())
            .field("records", &st.record_count)
            .finish()
    }
}

impl TableHeap {
    /// Create an empty heap on `dev`.
    pub fn new(dev: SimDevice, cfg: HeapConfig) -> Self {
        TableHeap {
            dev,
            cfg,
            state: RwLock::new(HeapState::default()),
            alloc: Mutex::new(Allocator::default()),
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &SimDevice {
        &self.dev
    }

    /// The heap configuration.
    pub fn config(&self) -> &HeapConfig {
        &self.cfg
    }

    /// Number of logical pages.
    pub fn num_pages(&self) -> usize {
        self.state.read().page_map.len()
    }

    /// Number of records.
    pub fn record_count(&self) -> u64 {
        self.state.read().record_count
    }

    /// Total data size in bytes (logical pages × page size).
    pub fn data_bytes(&self) -> u64 {
        self.num_pages() as u64 * self.cfg.page_size as u64
    }

    /// Copy of the sparse primary-key index.
    pub fn index_snapshot(&self) -> SparseIndex {
        self.state.read().index.clone()
    }

    /// Smallest and largest key currently stored.
    pub fn key_bounds(&self) -> Option<(Key, Key)> {
        let st = self.state.read();
        let first = *st.index.min_keys().first()?;
        // The index only knows page minima; the true max requires the last
        // page, so callers needing exactness should scan. For workload
        // sizing, the last page's min key is a fine lower bound.
        let last = *st.index.min_keys().last()?;
        Some((first, last))
    }

    /// Bulk-load sorted records, packing pages to `fill` (0 < fill ≤ 1) of
    /// capacity and writing them sequentially in `scan_io`-sized batches.
    pub fn bulk_load(
        &self,
        session: &SessionHandle,
        records: impl IntoIterator<Item = Record>,
        fill: f64,
    ) -> StorageResult<()> {
        assert!((0.0..=1.0).contains(&fill) && fill > 0.0);
        let page_size = self.cfg.page_size;
        let target_bytes = ((page_size as f64) * fill) as usize;
        let mut pages: Vec<Page> = Vec::new();
        let mut cur = Page::new(page_size);
        let mut used = 0usize;
        let mut count = 0u64;
        let mut last_key: Option<Key> = None;
        for r in records {
            assert!(
                last_key.is_none_or(|k| k <= r.key),
                "bulk_load requires sorted input"
            );
            last_key = Some(r.key);
            let need = r.encoded_len() + crate::page::SLOT_SIZE;
            if (used + need > target_bytes.min(page_size) || !cur.fits(&r))
                && cur.record_count() > 0
            {
                pages.push(std::mem::replace(&mut cur, Page::new(page_size)));
                used = 0;
            }
            assert!(cur.append(&r), "record larger than page");
            used += need;
            count += 1;
        }
        if cur.record_count() > 0 {
            pages.push(cur);
        }

        // Allocate one contiguous region and write in scan_io batches.
        let base = self
            .alloc
            .lock()
            .alloc_contiguous(pages.len(), page_size as u64);
        let mut batch: Vec<u8> = Vec::with_capacity(self.cfg.scan_io as usize);
        let mut batch_off = base;
        let mut map = Vec::with_capacity(pages.len());
        let mut index = SparseIndex::default();
        for (i, p) in pages.iter().enumerate() {
            map.push(base + (i * page_size) as u64);
            index.push(p.min_key().expect("non-empty page"));
            batch.extend_from_slice(p.as_bytes());
            if batch.len() as u64 >= self.cfg.scan_io {
                session.write(&self.dev, batch_off, &batch)?;
                batch_off += batch.len() as u64;
                batch.clear();
            }
        }
        if !batch.is_empty() {
            session.write(&self.dev, batch_off, &batch)?;
        }

        let mut st = self.state.write();
        assert!(st.page_map.is_empty(), "bulk_load on non-empty heap");
        st.page_map = map;
        st.index = index;
        st.record_count = count;
        Ok(())
    }

    /// Logical page containing `key`, if the heap is non-empty.
    pub fn locate(&self, key: Key) -> Option<usize> {
        self.state.read().index.locate(key)
    }

    /// Read one logical page (a random `page_size` I/O).
    pub fn read_page(&self, session: &SessionHandle, logical: usize) -> StorageResult<Page> {
        let st = self.state.read();
        let phys = st.page_map[logical];
        let bytes = session.read(&self.dev, phys, self.cfg.page_size as u64)?;
        drop(st);
        Ok(Page::from_bytes(bytes))
    }

    /// Write one logical page back in place (a random `page_size` I/O).
    /// The page must keep the same logical position (its min key may
    /// change only within the neighbouring pages' bounds).
    pub fn write_page(
        &self,
        session: &SessionHandle,
        logical: usize,
        page: &Page,
    ) -> StorageResult<()> {
        let st = self.state.read();
        let phys = st.page_map[logical];
        session.write(&self.dev, phys, page.as_bytes())?;
        Ok(())
    }

    /// Replace the records of logical page `logical` with `records`
    /// (sorted). Splits into additional pages if they no longer fit;
    /// removes the page if `records` is empty. Used by the in-place
    /// baseline. Returns the number of pages the content now spans.
    pub fn replace_page_records(
        &self,
        session: &SessionHandle,
        logical: usize,
        records: Vec<Record>,
        timestamp: u64,
    ) -> StorageResult<usize> {
        let page_size = self.cfg.page_size;
        let mut new_pages: Vec<Page> = Vec::new();
        let mut cur = Page::new(page_size);
        cur.set_timestamp(timestamp);

        for r in &records {
            if !cur.fits(r) {
                new_pages.push(std::mem::replace(&mut cur, Page::new(page_size)));
                cur.set_timestamp(timestamp);
            }
            assert!(cur.append(r));
        }
        if cur.record_count() > 0 {
            new_pages.push(cur);
        }

        // Physical writes first, then map splice under the write lock.
        let mut st = self.state.write();
        let before_count = {
            // Recompute old record count of this page for the delta: we
            // need the old page; the caller just read it, but be safe and
            // track via index only. Read it back (cheap; memory backend).
            let phys = st.page_map[logical];
            let (bytes, _) = self.dev.read_at(session.now(), phys, page_size as u64)?;
            Page::from_bytes(bytes).record_count() as u64
        };
        let old_phys = st.page_map[logical];
        let mut phys_slots = vec![old_phys];
        if new_pages.len() > 1 {
            let extra = self
                .alloc
                .lock()
                .alloc_contiguous(new_pages.len() - 1, page_size as u64);
            for i in 0..new_pages.len() - 1 {
                phys_slots.push(extra + (i * page_size) as u64);
            }
        }
        for (p, &phys) in new_pages.iter().zip(&phys_slots) {
            session.write(&self.dev, phys, p.as_bytes())?;
        }
        let spans = new_pages.len();
        if new_pages.is_empty() {
            st.page_map.remove(logical);
            let mut mins = st.index.min_keys().to_vec();
            mins.remove(logical);
            st.index = SparseIndex::new(mins);
            self.alloc.lock().free_pages([old_phys]);
        } else {
            let mut mins = st.index.min_keys().to_vec();
            st.page_map
                .splice(logical..=logical, phys_slots.iter().copied());
            mins.splice(
                logical..=logical,
                new_pages.iter().map(|p| p.min_key().unwrap()),
            );
            st.index = SparseIndex::new(mins);
        }
        st.record_count = st.record_count - before_count + records.len() as u64;
        Ok(spans)
    }

    /// Start a record-granularity range scan of `[begin, end]`.
    pub fn scan_range(self: &Arc<Self>, session: SessionHandle, begin: Key, end: Key) -> RangeScan {
        RangeScan::new(Arc::clone(self), session, begin, end)
    }

    /// Restore heap metadata from durable records (crash recovery). The
    /// device already holds the page bytes; this reinstates the logical
    /// page map, sparse index, record count, and the allocator's
    /// high-water mark.
    pub fn restore(
        &self,
        page_map: Vec<u64>,
        min_keys: Vec<Key>,
        record_count: u64,
        alloc_next: u64,
    ) {
        assert_eq!(page_map.len(), min_keys.len());
        let mut st = self.state.write();
        st.page_map = page_map;
        st.index = SparseIndex::new(min_keys);
        st.record_count = record_count;
        drop(st);
        self.alloc.lock().next = alloc_next;
    }

    /// Replay a logged chunk splice (crash recovery). Mirrors what
    /// [`HeapRewriter::commit_chunk`] did before the crash, without any
    /// device I/O.
    pub fn apply_splice(&self, commit: &ChunkCommit) {
        let page_size = self.cfg.page_size as u64;
        let mut st = self.state.write();
        let range = commit.at..commit.at + commit.n_old;
        let new_phys = (0..commit.n_new).map(|i| commit.base_phys + i as u64 * page_size);
        st.page_map.splice(range.clone(), new_phys);
        let mut mins = st.index.min_keys().to_vec();
        mins.splice(range, commit.min_keys.iter().copied());
        st.index = SparseIndex::new(mins);
        st.record_count = (st.record_count as i64 + commit.record_delta) as u64;
        let mut alloc = self.alloc.lock();
        alloc.next = alloc
            .next
            .max(commit.base_phys + commit.n_new as u64 * page_size);
    }

    /// Current physical allocation high-water mark (durable metadata for
    /// recovery).
    pub fn alloc_high_water(&self) -> u64 {
        self.alloc.lock().next
    }

    /// The page map and index minimum keys (durable metadata snapshot).
    pub fn metadata_snapshot(&self) -> (Vec<u64>, Vec<Key>, u64) {
        let st = self.state.read();
        (
            st.page_map.clone(),
            st.index.min_keys().to_vec(),
            st.record_count,
        )
    }

    /// Start a chunked rewrite (migration) pass over the whole heap.
    pub fn rewriter(&self, session: SessionHandle) -> HeapRewriter<'_> {
        HeapRewriter::new(self, session, None)
    }

    /// Start a chunked rewrite over only the logical pages overlapping
    /// `[begin, end]` (partial migration, §3.5 "Improving Migration":
    /// "one can migrate a portion … of updates at a time to distribute
    /// the cost across multiple operations").
    pub fn rewriter_range(&self, session: SessionHandle, begin: Key, end: Key) -> HeapRewriter<'_> {
        let bounds = self.state.read().index.page_range(begin, end);
        HeapRewriter::new(self, session, bounds)
    }
}

/// A record-level range scan with batched, prefetched reads.
///
/// Yields records; [`RangeScan::next_with_ts`] additionally exposes the
/// timestamp of the page each record came from, which MaSM's
/// `Merge_data_updates` needs during in-place migration (§3.2).
pub struct RangeScan {
    heap: Arc<TableHeap>,
    session: SessionHandle,
    begin: Key,
    end: Key,
    /// Key from which the next batch starts; `None` when exhausted.
    next_from: Option<Key>,
    pending: Option<PendingBatch>,
    buffer: VecDeque<(Record, u64)>,
    cpu_per_record: Ns,
    started: bool,
    /// Pages read so far (for reporting).
    pages_read: u64,
}

struct PendingBatch {
    ticket: IoTicket,
    pages: usize,
    /// First key of the page after the batch (None = batch reaches the end
    /// of the overlap range).
    next_from: Option<Key>,
}

impl RangeScan {
    fn new(heap: Arc<TableHeap>, session: SessionHandle, begin: Key, end: Key) -> Self {
        RangeScan {
            heap,
            session,
            begin,
            end,
            next_from: Some(begin),
            pending: None,
            buffer: VecDeque::new(),
            cpu_per_record: 0,
            started: false,
            pages_read: 0,
        }
    }

    /// Inject CPU cost per returned record (Figure 13's experiment).
    pub fn with_cpu_per_record(mut self, ns: Ns) -> Self {
        self.cpu_per_record = ns;
        self
    }

    /// Pages read so far.
    pub fn pages_read(&self) -> u64 {
        self.pages_read
    }

    /// Read the next record along with the timestamp of its page.
    pub fn next_with_ts(&mut self) -> Option<(Record, u64)> {
        self.started = true;
        while self.buffer.is_empty() {
            if !self.advance() {
                return None;
            }
        }
        if self.cpu_per_record > 0 {
            self.session.cpu(self.cpu_per_record);
        }
        self.buffer.pop_front()
    }

    /// Adapt into an iterator of `(record, page_timestamp)`.
    pub fn with_ts(self) -> TsRangeScan {
        TsRangeScan(self)
    }

    /// Issue an async read for the batch starting at `from`. Performed
    /// under the heap's read lock so a concurrent rewrite cannot recycle
    /// the physical pages out from under us.
    fn issue_batch(&self, from: Key) -> Option<PendingBatch> {
        let heap = &self.heap;
        let st = heap.state.read();
        if st.page_map.is_empty() {
            return None;
        }
        let first = st.index.locate(from)?;
        // Last logical page overlapping the range.
        let last_overlap = st.index.locate(self.end)?;
        if first > last_overlap {
            return None;
        }
        let page_size = heap.cfg.page_size as u64;
        let max_pages = (heap.cfg.scan_io / page_size).max(1) as usize;
        let mut last = first;
        while last < last_overlap
            && last - first + 1 < max_pages
            && st.page_map[last + 1] == st.page_map[last] + page_size
        {
            last += 1;
        }
        let n = last - first + 1;
        let ticket = self
            .session
            .read_async(&heap.dev, st.page_map[first], n as u64 * page_size)
            .ok()?;
        let next_from = if last < last_overlap {
            Some(st.index.min_key(last + 1))
        } else {
            None
        };
        Some(PendingBatch {
            ticket,
            pages: n,
            next_from,
        })
    }

    /// Wait for the pending batch, refill the buffer, and prefetch the
    /// next batch.
    fn advance(&mut self) -> bool {
        if self.pending.is_none() {
            let Some(from) = self.next_from else {
                return false;
            };
            self.pending = self.issue_batch(from);
            if self.pending.is_none() {
                self.next_from = None;
                return false;
            }
        }
        let batch = self.pending.take().expect("pending batch");
        self.next_from = batch.next_from;
        let data = self.session.wait(batch.ticket);
        self.pages_read += batch.pages as u64;
        // Prefetch the next batch before decoding this one (overlap).
        if let Some(from) = self.next_from {
            self.pending = self.issue_batch(from);
            if self.pending.is_none() {
                self.next_from = None;
            }
        }
        let page_size = self.heap.cfg.page_size;
        for chunk in data.chunks_exact(page_size) {
            let page = Page::from_bytes(chunk.to_vec());
            let ts = page.timestamp();
            for r in page.records() {
                if r.key >= self.begin && r.key <= self.end {
                    self.buffer.push_back((r, ts));
                }
            }
        }
        true
    }
}

impl Iterator for RangeScan {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        self.next_with_ts().map(|(r, _)| r)
    }
}

/// Iterator adapter yielding `(record, page_timestamp)`.
pub struct TsRangeScan(RangeScan);

impl TsRangeScan {
    /// Pages read so far.
    pub fn pages_read(&self) -> u64 {
        self.0.pages_read()
    }
}

impl Iterator for TsRangeScan {
    type Item = (Record, u64);

    fn next(&mut self) -> Option<(Record, u64)> {
        self.0.next_with_ts()
    }
}

/// The durable description of one committed rewrite chunk: everything a
/// crash-recovery log needs to replay the page-map splice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkCommit {
    /// Logical index at which the splice happened.
    pub at: usize,
    /// Number of old logical pages replaced.
    pub n_old: usize,
    /// Physical base offset of the new pages (contiguous).
    pub base_phys: u64,
    /// Number of new pages.
    pub n_new: usize,
    /// Minimum key of each new page.
    pub min_keys: Vec<Key>,
    /// Change in total record count.
    pub record_delta: i64,
}

/// Chunked copy-forward rewriter (the I/O engine of MaSM's in-place
/// migration). Usage:
///
/// ```ignore
/// let mut rw = heap.rewriter(session);
/// while let Some(old_pages) = rw.next_chunk()? {
///     let new_pages = merge(old_pages, updates);
///     rw.commit_chunk(new_pages)?;
/// }
/// rw.finish();
/// ```
pub struct HeapRewriter<'a> {
    heap: &'a TableHeap,
    session: SessionHandle,
    /// Logical cursor into the *current* page map.
    cursor: usize,
    /// One past the last logical page to rewrite (tracks splices).
    end_cursor: usize,
    /// Whether this rewrite covers the whole heap (affects `at_end`
    /// semantics for the migration driver).
    full: bool,
    /// Pages handed out by the last `next_chunk` (awaiting commit).
    outstanding: usize,
    /// Records contained in the outstanding chunk's old pages.
    outstanding_records: u64,
    records_written: u64,
}

impl<'a> HeapRewriter<'a> {
    fn new(heap: &'a TableHeap, session: SessionHandle, bounds: Option<(usize, usize)>) -> Self {
        let map_len = heap.state.read().page_map.len();
        let (cursor, end_cursor, full) = match bounds {
            Some((first, last)) => (first, (last + 1).min(map_len), false),
            None => (0, map_len, true),
        };
        HeapRewriter {
            heap,
            session,
            cursor,
            end_cursor,
            full,
            outstanding: 0,
            outstanding_records: 0,
            records_written: 0,
        }
    }

    /// Read the next chunk of old pages (sequential 1 MB-class read).
    /// Returns `None` when the whole heap has been rewritten.
    pub fn next_chunk(&mut self) -> StorageResult<Option<Vec<Page>>> {
        assert_eq!(self.outstanding, 0, "commit_chunk before next_chunk");
        let heap = self.heap;
        let st = heap.state.read();
        if self.cursor >= self.end_cursor.min(st.page_map.len()) {
            return Ok(None);
        }
        let page_size = heap.cfg.page_size as u64;
        let chunk_pages = heap.cfg.rewrite_chunk_pages.max(1);
        let end = (self.cursor + chunk_pages).min(self.end_cursor.min(st.page_map.len()));
        // Read each physically-contiguous extent with one I/O.
        let mut pages = Vec::with_capacity(end - self.cursor);
        let mut i = self.cursor;
        while i < end {
            let mut j = i;
            while j + 1 < end && st.page_map[j + 1] == st.page_map[j] + page_size {
                j += 1;
            }
            let n = j - i + 1;
            let data = self
                .session
                .read(&heap.dev, st.page_map[i], n as u64 * page_size)?;
            for chunk in data.chunks_exact(page_size as usize) {
                pages.push(Page::from_bytes(chunk.to_vec()));
            }
            i = j + 1;
        }
        self.outstanding = end - self.cursor;
        self.outstanding_records = pages.iter().map(|p| p.record_count() as u64).sum();
        Ok(Some(pages))
    }

    /// True when the chunk returned by the last `next_chunk` is the final
    /// one **and** the rewrite covers the end of the heap (the migration
    /// driver must fold any trailing inserts into it). Range rewrites
    /// never report `at_end`: keys beyond the range belong to untouched
    /// pages.
    pub fn at_end(&self) -> bool {
        self.full && self.cursor + self.outstanding >= self.heap.state.read().page_map.len()
    }

    /// True when the (possibly range-restricted) rewrite has consumed
    /// all its pages.
    pub fn is_exhausted(&self) -> bool {
        self.cursor >= self.end_cursor
    }

    /// Write `new_pages` in place of the pages returned by the last
    /// `next_chunk`: sequential write into freed/fresh space, then splice
    /// the page map and free the old slots. Returns the splice
    /// description for durable logging.
    pub fn commit_chunk(&mut self, new_pages: Vec<Page>) -> StorageResult<ChunkCommit> {
        let heap = self.heap;
        let page_size = heap.cfg.page_size as u64;
        let n_old = self.outstanding;
        assert!(n_old > 0, "next_chunk before commit_chunk");
        let n_new = new_pages.len();

        // Allocate and write outside the state lock (fresh slots are not
        // visible to any reader yet).
        let base = heap.alloc.lock().alloc_contiguous(n_new, page_size);
        let mut buf = Vec::with_capacity(n_new * page_size as usize);
        for p in &new_pages {
            debug_assert_eq!(p.size(), page_size as usize);
            buf.extend_from_slice(p.as_bytes());
        }
        if !buf.is_empty() {
            self.session.write(&heap.dev, base, &buf)?;
        }

        let mut st = heap.state.write();
        let old_range = self.cursor..self.cursor + n_old;
        let old_phys: Vec<u64> = st.page_map[old_range.clone()].to_vec();
        let new_phys = (0..n_new).map(|i| base + i as u64 * page_size);
        // next_chunk already read (and counted) the old pages.
        let old_records = self.outstanding_records;
        st.page_map.splice(old_range.clone(), new_phys);
        let mut mins = st.index.min_keys().to_vec();
        let new_min_keys: Vec<Key> = new_pages
            .iter()
            .map(|p| p.min_key().expect("empty page in commit_chunk"))
            .collect();
        mins.splice(old_range, new_min_keys.iter().copied());
        st.index = SparseIndex::new(mins);
        let new_records: u64 = new_pages.iter().map(|p| p.record_count() as u64).sum();
        st.record_count = st.record_count - old_records + new_records;
        drop(st);

        heap.alloc.lock().free_pages(old_phys);
        let commit = ChunkCommit {
            at: self.cursor,
            n_old,
            base_phys: base,
            n_new,
            min_keys: new_min_keys,
            record_delta: new_records as i64 - old_records as i64,
        };
        self.cursor += n_new;
        self.end_cursor = (self.end_cursor + n_new).saturating_sub(n_old);
        self.outstanding = 0;
        self.records_written += new_records;
        Ok(commit)
    }

    /// Total records written by committed chunks.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Finish the rewrite (asserts every chunk was committed).
    pub fn finish(self) {
        assert_eq!(self.outstanding, 0, "finish with uncommitted chunk");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masm_storage::{DeviceProfile, SimClock};

    fn heap_with(n: u64) -> (Arc<TableHeap>, SessionHandle) {
        let clock = SimClock::new();
        let dev = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let heap = Arc::new(TableHeap::new(dev, HeapConfig::default()));
        let session = SessionHandle::fresh(clock);
        // Even keys 0,2,4,... like the paper (odd keys free for inserts).
        heap.bulk_load(&session, (0..n).map(|i| Record::synthetic(i * 2, 92)), 1.0)
            .unwrap();
        (heap, session)
    }

    #[test]
    fn bulk_load_counts() {
        let (heap, _) = heap_with(1000);
        assert_eq!(heap.record_count(), 1000);
        assert!(heap.num_pages() >= 25);
    }

    #[test]
    fn full_scan_returns_everything_in_order() {
        let (heap, s) = heap_with(1000);
        let got: Vec<Key> = heap.scan_range(s, 0, u64::MAX).map(|r| r.key).collect();
        assert_eq!(got.len(), 1000);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(got[0], 0);
        assert_eq!(*got.last().unwrap(), 1998);
    }

    #[test]
    fn small_range_scan_is_exact() {
        let (heap, s) = heap_with(1000);
        let got: Vec<Key> = heap.scan_range(s, 100, 120).map(|r| r.key).collect();
        assert_eq!(
            got,
            vec![100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120]
        );
    }

    #[test]
    fn empty_range_scan() {
        let (heap, s) = heap_with(100);
        // Odd keys don't exist.
        let got: Vec<Key> = heap.scan_range(s, 51, 51).map(|r| r.key).collect();
        assert!(got.is_empty());
    }

    #[test]
    fn scan_reads_only_overlapping_pages() {
        let (heap, s) = heap_with(10_000);
        let mut scan = heap.scan_range(s, 5000, 5010);
        let got: Vec<Key> = scan.by_ref().map(|r| r.key).collect();
        assert_eq!(got.len(), 6);
        assert!(scan.pages_read() <= 2, "read {} pages", scan.pages_read());
    }

    #[test]
    fn scan_uses_large_sequential_io() {
        let (heap, s) = heap_with(50_000);
        heap.device().reset_stats();
        let n = heap.scan_range(s, 0, u64::MAX).count();
        assert_eq!(n, 50_000);
        let stats = heap.device().stats();
        // ~1282 pages -> with 1MB batches, ~6 reads, mostly sequential.
        assert!(stats.read_ops < 20, "{stats:?}");
        assert!(stats.sequential_ops + 1 >= stats.read_ops, "{stats:?}");
    }

    #[test]
    fn read_write_page_roundtrip() {
        let (heap, s) = heap_with(100);
        let mut page = heap.read_page(&s, 0).unwrap();
        page.set_timestamp(42);
        heap.write_page(&s, 0, &page).unwrap();
        assert_eq!(heap.read_page(&s, 0).unwrap().timestamp(), 42);
    }

    #[test]
    fn replace_page_records_modify() {
        let (heap, s) = heap_with(100);
        let page = heap.read_page(&s, 0).unwrap();
        let mut records: Vec<Record> = page.records().collect();
        records[0].payload = vec![0xFF; 92];
        let spans = heap
            .replace_page_records(&s, 0, records.clone(), 9)
            .unwrap();
        assert_eq!(spans, 1);
        let back = heap.read_page(&s, 0).unwrap();
        assert_eq!(back.record(0).payload, vec![0xFF; 92]);
        assert_eq!(back.timestamp(), 9);
        assert_eq!(heap.record_count(), 100);
    }

    #[test]
    fn replace_page_records_split_on_insert() {
        let (heap, s) = heap_with(100);
        let pages_before = heap.num_pages();
        let page = heap.read_page(&s, 0).unwrap();
        let mut records: Vec<Record> = page.records().collect();
        // Insert the odd keys inside this page's key range so the split
        // pages stay within the neighbouring pages' bounds.
        let max = page.max_key().unwrap();
        let extra: Vec<Record> = (0..max)
            .filter(|k| k % 2 == 1)
            .map(|k| Record::synthetic(k, 92))
            .collect();
        records.extend(extra);
        records.sort_by_key(|r| r.key);
        let count = records.len() as u64;
        let spans = heap.replace_page_records(&s, 0, records, 1).unwrap();
        assert!(spans >= 2);
        assert_eq!(heap.num_pages(), pages_before + spans - 1);
        // All records still readable, in order.
        let got: Vec<Key> = heap.scan_range(s, 0, u64::MAX).map(|r| r.key).collect();
        assert_eq!(got.len() as u64, 100 - page.record_count() as u64 + count);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn rewriter_identity_preserves_data() {
        let (heap, s) = heap_with(5000);
        let before: Vec<Key> = heap
            .scan_range(s.clone(), 0, u64::MAX)
            .map(|r| r.key)
            .collect();
        let mut rw = heap.rewriter(s.clone());
        while let Some(pages) = rw.next_chunk().unwrap() {
            rw.commit_chunk(pages).unwrap();
        }
        rw.finish();
        let after: Vec<Key> = heap.scan_range(s, 0, u64::MAX).map(|r| r.key).collect();
        assert_eq!(before, after);
        assert_eq!(heap.record_count(), 5000);
    }

    #[test]
    fn rewriter_can_grow_and_shrink_chunks() {
        let (heap, s) = heap_with(2000);
        // Drop every record with key % 4 == 0 and add odd keys: net growth.
        let mut rw = heap.rewriter(s.clone());
        let page_size = heap.config().page_size;
        while let Some(pages) = rw.next_chunk().unwrap() {
            let mut records: Vec<Record> = pages.iter().flat_map(|p| p.records()).collect();
            let lo = records.first().unwrap().key;
            let hi = records.last().unwrap().key;
            records.retain(|r| r.key % 4 != 0);
            let mut inserts: Vec<Record> = (lo..=hi)
                .filter(|k| k % 2 == 1)
                .map(|k| Record::synthetic(k, 92))
                .collect();
            records.append(&mut inserts);
            records.sort_by_key(|r| r.key);
            let mut new_pages = Vec::new();
            let mut cur = Page::new(page_size);
            for r in &records {
                if !cur.fits(r) {
                    new_pages.push(std::mem::replace(&mut cur, Page::new(page_size)));
                }
                assert!(cur.append(r));
            }
            if cur.record_count() > 0 {
                new_pages.push(cur);
            }
            rw.commit_chunk(new_pages).unwrap();
        }
        rw.finish();
        let got: Vec<Key> = heap.scan_range(s, 0, u64::MAX).map(|r| r.key).collect();
        assert!(got.iter().all(|k| k % 4 != 0));
        assert!(got.windows(2).all(|w| w[0] < w[1]));
        // 2000 evens: 1000 survive (k%4==2); odds inserted between lo..hi
        // of each chunk — roughly 2000 of them.
        assert!(got.len() > 2500, "got {}", got.len());
    }

    #[test]
    fn rewriter_reuses_freed_space() {
        let (heap, s) = heap_with(20_000);
        let bytes_before = heap.alloc.lock().next;
        let mut rw = heap.rewriter(s);
        while let Some(pages) = rw.next_chunk().unwrap() {
            rw.commit_chunk(pages).unwrap();
        }
        rw.finish();
        let bytes_after = heap.alloc.lock().next;
        // Identity rewrite must not grow the file by more than ~2 chunks.
        let chunk_bytes = (heap.config().rewrite_chunk_pages * heap.config().page_size) as u64;
        assert!(
            bytes_after <= bytes_before + 2 * chunk_bytes,
            "before={bytes_before} after={bytes_after}"
        );
    }

    #[test]
    fn locate_finds_key_page() {
        let (heap, s) = heap_with(1000);
        let logical = heap.locate(500).unwrap();
        let page = heap.read_page(&s, logical).unwrap();
        assert!(page.min_key().unwrap() <= 500);
        assert!(page.max_key().unwrap() >= 500);
    }
}
