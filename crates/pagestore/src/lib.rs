//! # masm-pagestore — row-store substrate for the MaSM reproduction
//!
//! The paper's prototype is "a row-store DW supporting range scans on
//! tables. Tables are implemented as file system files with the slotted
//! page structure. Records are clustered according to the primary key
//! order. A range scan performs 1MB-sized disk I/O reads" (§4.1). This
//! crate is that prototype, built on the simulated devices of
//! [`masm_storage`]:
//!
//! * [`record`] — records with a `u64` primary key and a fixed- or
//!   variable-width payload.
//! * [`schema`] — fixed-width field layout so updates can modify
//!   individual attributes.
//! * [`page`] — slotted pages whose header carries the timestamp of the
//!   last update applied (the paper reuses the page LSN field for this;
//!   §3.2 "Timestamps").
//! * [`index`] — the sparse primary-key index (smallest key per page).
//! * [`heap`] — the clustered table heap: bulk load, 1 MB prefetching
//!   range scans, 4 KB in-place page writes (for the in-place baseline),
//!   and a chunked copy-forward rewriter used by MaSM's in-place
//!   migration.

pub mod heap;
pub mod index;
pub mod page;
pub mod record;
pub mod schema;

pub use heap::{ChunkCommit, HeapConfig, HeapRewriter, RangeScan, TableHeap, TsRangeScan};
pub use index::SparseIndex;
pub use page::Page;
pub use record::{Key, Record};
pub use schema::{Field, FieldType, Schema};
