//! Slotted pages.
//!
//! Layout (little-endian):
//!
//! ```text
//! [0..8)    page timestamp — commit time of the last update applied to the
//!           page; the paper reuses the LSN field for this (§3.2)
//! [8..10)   record count
//! [10..12)  free-space pointer (offset of first free byte)
//! [12..16)  reserved
//! [16..)    record heap, growing up
//! [... end) slot directory of u16 record offsets, growing down
//! ```
//!
//! Records inside a page are kept in key order (the heap is clustered by
//! primary key; bulk load and migration both emit sorted streams).

use crate::record::Record;

/// Page header size in bytes.
pub const PAGE_HEADER: usize = 16;
/// Bytes per slot directory entry.
pub const SLOT_SIZE: usize = 2;

/// A slotted page over an owned byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    data: Vec<u8>,
}

impl Page {
    /// Create an empty page of `size` bytes.
    pub fn new(size: usize) -> Self {
        assert!(size >= PAGE_HEADER + SLOT_SIZE, "page too small");
        assert!(size <= u16::MAX as usize, "page too large for u16 offsets");
        let mut data = vec![0u8; size];
        data[10..12].copy_from_slice(&(PAGE_HEADER as u16).to_le_bytes());
        Page { data }
    }

    /// Wrap raw bytes previously produced by [`Page::as_bytes`].
    pub fn from_bytes(data: Vec<u8>) -> Self {
        assert!(data.len() >= PAGE_HEADER);
        Page { data }
    }

    /// Raw bytes of the page.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Consume into raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }

    /// Page size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Timestamp of the last update applied to this page.
    pub fn timestamp(&self) -> u64 {
        u64::from_le_bytes(self.data[0..8].try_into().unwrap())
    }

    /// Set the last-applied-update timestamp.
    pub fn set_timestamp(&mut self, ts: u64) {
        self.data[0..8].copy_from_slice(&ts.to_le_bytes());
    }

    /// Number of records stored.
    pub fn record_count(&self) -> usize {
        u16::from_le_bytes(self.data[8..10].try_into().unwrap()) as usize
    }

    fn set_record_count(&mut self, n: usize) {
        self.data[8..10].copy_from_slice(&(n as u16).to_le_bytes());
    }

    fn free_ptr(&self) -> usize {
        u16::from_le_bytes(self.data[10..12].try_into().unwrap()) as usize
    }

    fn set_free_ptr(&mut self, p: usize) {
        self.data[10..12].copy_from_slice(&(p as u16).to_le_bytes());
    }

    fn slot_offset(&self, i: usize) -> usize {
        let pos = self.data.len() - (i + 1) * SLOT_SIZE;
        u16::from_le_bytes(self.data[pos..pos + SLOT_SIZE].try_into().unwrap()) as usize
    }

    fn set_slot_offset(&mut self, i: usize, off: usize) {
        let pos = self.data.len() - (i + 1) * SLOT_SIZE;
        self.data[pos..pos + SLOT_SIZE].copy_from_slice(&(off as u16).to_le_bytes());
    }

    /// Free bytes remaining (accounting for the slot a new record needs).
    pub fn free_space(&self) -> usize {
        let slots_end = self.data.len() - self.record_count() * SLOT_SIZE;
        slots_end.saturating_sub(self.free_ptr())
    }

    /// Whether `record` fits.
    pub fn fits(&self, record: &Record) -> bool {
        self.free_space() >= record.encoded_len() + SLOT_SIZE
    }

    /// Append a record. Records must be appended in non-decreasing key
    /// order; returns `false` (leaving the page unchanged) when full.
    pub fn append(&mut self, record: &Record) -> bool {
        if !self.fits(record) {
            return false;
        }
        let n = self.record_count();
        if n > 0 {
            debug_assert!(
                self.record(n - 1).key <= record.key,
                "page records must stay key-ordered"
            );
        }
        let off = self.free_ptr();
        let len = record.encoded_len();
        record.encode(&mut self.data[off..off + len]);
        self.set_slot_offset(n, off);
        self.set_record_count(n + 1);
        self.set_free_ptr(off + len);
        true
    }

    /// Decode record `i`.
    pub fn record(&self, i: usize) -> Record {
        assert!(i < self.record_count(), "slot {i} out of range");
        let off = self.slot_offset(i);
        Record::decode(&self.data[off..]).0
    }

    /// Key of record `i` without decoding the payload.
    pub fn key_at(&self, i: usize) -> u64 {
        let off = self.slot_offset(i);
        u64::from_le_bytes(self.data[off..off + 8].try_into().unwrap())
    }

    /// Iterate over all records.
    pub fn records(&self) -> impl Iterator<Item = Record> + '_ {
        (0..self.record_count()).map(move |i| self.record(i))
    }

    /// Smallest key on the page, if any.
    pub fn min_key(&self) -> Option<u64> {
        (self.record_count() > 0).then(|| self.key_at(0))
    }

    /// Largest key on the page, if any.
    pub fn max_key(&self) -> Option<u64> {
        let n = self.record_count();
        (n > 0).then(|| self.key_at(n - 1))
    }

    /// Binary-search the page for `key`; `Ok(slot)` if present.
    pub fn find(&self, key: u64) -> Result<usize, usize> {
        let n = self.record_count();
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let k = self.key_at(mid);
            if k < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < n && self.key_at(lo) == key {
            Ok(lo)
        } else {
            Err(lo)
        }
    }

    /// Replace the payload of the record in slot `i` (same width only —
    /// fixed-width schemas guarantee this; used by in-place modify).
    pub fn overwrite_payload(&mut self, i: usize, payload: &[u8]) {
        let off = self.slot_offset(i);
        let old = self.record(i);
        assert_eq!(
            old.payload.len(),
            payload.len(),
            "in-place overwrite requires equal width"
        );
        self.data[off + 10..off + 10 + payload.len()].copy_from_slice(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(keys: &[u64]) -> Page {
        let mut p = Page::new(4096);
        for &k in keys {
            assert!(p.append(&Record::synthetic(k, 92)));
        }
        p
    }

    #[test]
    fn append_and_read_back() {
        let p = page_with(&[1, 5, 9]);
        assert_eq!(p.record_count(), 3);
        assert_eq!(p.record(0), Record::synthetic(1, 92));
        assert_eq!(p.record(2), Record::synthetic(9, 92));
        assert_eq!(p.min_key(), Some(1));
        assert_eq!(p.max_key(), Some(9));
    }

    #[test]
    fn capacity_matches_paper_density() {
        // 4KB page, 102B encoded records (+2B slot): ~39 records.
        let mut p = Page::new(4096);
        let mut n = 0u64;
        while p.append(&Record::synthetic(n, 92)) {
            n += 1;
        }
        assert!((35..=40).contains(&n), "got {n}");
    }

    #[test]
    fn full_page_rejects_append() {
        let mut p = Page::new(128);
        assert!(p.append(&Record::synthetic(1, 80)));
        let before = p.clone();
        assert!(!p.append(&Record::synthetic(2, 80)));
        assert_eq!(p, before, "failed append must not mutate");
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut p = page_with(&[2, 4, 6]);
        p.set_timestamp(777);
        let bytes = p.clone().into_bytes();
        let q = Page::from_bytes(bytes);
        assert_eq!(q, p);
        assert_eq!(q.timestamp(), 777);
        assert_eq!(q.record(1).key, 4);
    }

    #[test]
    fn find_binary_search() {
        let p = page_with(&[10, 20, 30, 40]);
        assert_eq!(p.find(10), Ok(0));
        assert_eq!(p.find(40), Ok(3));
        assert_eq!(p.find(25), Err(2));
        assert_eq!(p.find(5), Err(0));
        assert_eq!(p.find(99), Err(4));
    }

    #[test]
    fn overwrite_payload_in_place() {
        let mut p = page_with(&[10, 20, 30]);
        let new_payload = vec![0xAB; 92];
        p.overwrite_payload(1, &new_payload);
        assert_eq!(p.record(1).payload, new_payload);
        assert_eq!(p.record(0), Record::synthetic(10, 92));
        assert_eq!(p.record(2), Record::synthetic(30, 92));
    }

    #[test]
    fn timestamp_defaults_to_zero() {
        assert_eq!(Page::new(4096).timestamp(), 0);
    }

    #[test]
    fn empty_page_has_no_keys() {
        let p = Page::new(4096);
        assert_eq!(p.min_key(), None);
        assert_eq!(p.max_key(), None);
        assert_eq!(p.records().count(), 0);
    }

    #[test]
    #[should_panic(expected = "key-ordered")]
    #[cfg_attr(not(debug_assertions), ignore = "debug_assert is compiled out")]
    fn unordered_append_panics_in_debug() {
        let mut p = Page::new(4096);
        p.append(&Record::synthetic(9, 10));
        p.append(&Record::synthetic(3, 10));
    }
}
