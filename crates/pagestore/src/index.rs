//! Sparse primary-key index: the smallest key of every logical page.
//!
//! In a clustered heap this is all the index a range scan or a point
//! lookup needs; the paper assumes it fits in memory (§2.1 footnote 2:
//! RIDs "may be obtained by searching the (in-memory) index on sort
//! keys").

use crate::record::Key;

/// Smallest key per logical page, in logical page order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseIndex {
    min_keys: Vec<Key>,
}

impl SparseIndex {
    /// Build from per-page minimum keys (must be non-decreasing).
    pub fn new(min_keys: Vec<Key>) -> Self {
        debug_assert!(min_keys.windows(2).all(|w| w[0] <= w[1]));
        SparseIndex { min_keys }
    }

    /// Number of pages indexed.
    pub fn len(&self) -> usize {
        self.min_keys.len()
    }

    /// True when no pages are indexed.
    pub fn is_empty(&self) -> bool {
        self.min_keys.is_empty()
    }

    /// Minimum key of logical page `p`.
    pub fn min_key(&self, p: usize) -> Key {
        self.min_keys[p]
    }

    /// Logical page that would contain `key`: the last page whose minimum
    /// key is ≤ `key` (page 0 if `key` precedes everything).
    pub fn locate(&self, key: Key) -> Option<usize> {
        if self.min_keys.is_empty() {
            return None;
        }
        // partition_point gives the count of pages with min_key <= key.
        let n = self.min_keys.partition_point(|&k| k <= key);
        Some(n.saturating_sub(1))
    }

    /// Inclusive logical page range overlapping `[begin, end]`.
    pub fn page_range(&self, begin: Key, end: Key) -> Option<(usize, usize)> {
        if self.min_keys.is_empty() || end < begin {
            return None;
        }
        let first = self.locate(begin)?;
        let last = self.locate(end)?;
        Some((first, last))
    }

    /// Append a page's minimum key during bulk load.
    pub fn push(&mut self, min_key: Key) {
        debug_assert!(self.min_keys.last().is_none_or(|&k| k <= min_key));
        self.min_keys.push(min_key);
    }

    /// All minimum keys (for snapshots).
    pub fn min_keys(&self) -> &[Key] {
        &self.min_keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> SparseIndex {
        SparseIndex::new(vec![0, 100, 200, 300])
    }

    #[test]
    fn locate_exact_and_between() {
        let i = idx();
        assert_eq!(i.locate(0), Some(0));
        assert_eq!(i.locate(99), Some(0));
        assert_eq!(i.locate(100), Some(1));
        assert_eq!(i.locate(250), Some(2));
        assert_eq!(i.locate(1_000_000), Some(3));
    }

    #[test]
    fn locate_before_first_page_clamps() {
        let i = SparseIndex::new(vec![50, 100]);
        assert_eq!(i.locate(10), Some(0));
    }

    #[test]
    fn page_range_spans() {
        let i = idx();
        assert_eq!(i.page_range(50, 250), Some((0, 2)));
        assert_eq!(i.page_range(100, 100), Some((1, 1)));
        assert_eq!(i.page_range(301, 500), Some((3, 3)));
    }

    #[test]
    fn page_range_empty_cases() {
        let i = idx();
        assert_eq!(i.page_range(10, 5), None);
        assert_eq!(SparseIndex::default().page_range(0, 10), None);
        assert_eq!(SparseIndex::default().locate(5), None);
    }

    #[test]
    fn push_keeps_order() {
        let mut i = SparseIndex::default();
        i.push(1);
        i.push(5);
        i.push(5);
        assert_eq!(i.len(), 3);
        assert_eq!(i.locate(5), Some(2));
    }
}
