//! Fixed-width payload schemas.
//!
//! Well-formed `modify` updates change "the field(s) of a record to
//! specified new value(s) given its key" (§2.1). To apply such an update we
//! need byte offsets of fields inside the payload; a [`Schema`] provides
//! them for fixed-width rows (the common DW case and the paper's setup).

/// Type of a fixed-width field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldType {
    /// Unsigned 32-bit integer.
    U32,
    /// Unsigned 64-bit integer.
    U64,
    /// IEEE-754 double.
    F64,
    /// Raw bytes of the given width.
    Bytes(u16),
}

impl FieldType {
    /// Width of the field in bytes.
    pub fn width(&self) -> usize {
        match self {
            FieldType::U32 => 4,
            FieldType::U64 | FieldType::F64 => 8,
            FieldType::Bytes(n) => *n as usize,
        }
    }
}

/// One field of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name (for reports and examples).
    pub name: String,
    /// Field type.
    pub ty: FieldType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, ty: FieldType) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// A fixed-width payload layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
    offsets: Vec<usize>,
    width: usize,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        let mut offsets = Vec::with_capacity(fields.len());
        let mut off = 0usize;
        for f in &fields {
            offsets.push(off);
            off += f.ty.width();
        }
        Schema {
            fields,
            offsets,
            width: off,
        }
    }

    /// The paper's synthetic table: 100-byte records with an 8-byte key,
    /// one u32 "measure" field, and filler.
    pub fn synthetic_100b() -> Self {
        Schema::new(vec![
            Field::new("measure", FieldType::U32),
            Field::new("filler", FieldType::Bytes(88)),
        ])
    }

    /// Total payload width in bytes.
    pub fn payload_width(&self) -> usize {
        self.width
    }

    /// Number of fields.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Field descriptor by index.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Byte range of field `i` within the payload.
    pub fn field_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = self.offsets[i];
        start..start + self.fields[i].ty.width()
    }

    /// Read field `i` of `payload` as raw bytes.
    pub fn get<'a>(&self, payload: &'a [u8], i: usize) -> &'a [u8] {
        &payload[self.field_range(i)]
    }

    /// Overwrite field `i` of `payload` with `value` (must match width).
    pub fn set(&self, payload: &mut [u8], i: usize, value: &[u8]) {
        let range = self.field_range(i);
        assert_eq!(
            value.len(),
            range.len(),
            "field {} width mismatch: {} vs {}",
            i,
            value.len(),
            range.len()
        );
        payload[range].copy_from_slice(value);
    }

    /// Read field `i` as u32 (must be a U32 field).
    pub fn get_u32(&self, payload: &[u8], i: usize) -> u32 {
        u32::from_le_bytes(self.get(payload, i).try_into().expect("u32 field"))
    }

    /// Write field `i` as u32.
    pub fn set_u32(&self, payload: &mut [u8], i: usize, v: u32) {
        self.set(payload, i, &v.to_le_bytes());
    }

    /// Read field `i` as u64.
    pub fn get_u64(&self, payload: &[u8], i: usize) -> u64 {
        u64::from_le_bytes(self.get(payload, i).try_into().expect("u64 field"))
    }

    /// Write field `i` as u64.
    pub fn set_u64(&self, payload: &mut [u8], i: usize, v: u64) {
        self.set(payload, i, &v.to_le_bytes());
    }

    /// Read field `i` as f64.
    pub fn get_f64(&self, payload: &[u8], i: usize) -> f64 {
        f64::from_le_bytes(self.get(payload, i).try_into().expect("f64 field"))
    }

    /// A zeroed payload of the right width.
    pub fn empty_payload(&self) -> Vec<u8> {
        vec![0u8; self.width]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", FieldType::U32),
            Field::new("b", FieldType::U64),
            Field::new("c", FieldType::Bytes(3)),
        ])
    }

    #[test]
    fn widths_and_offsets() {
        let s = schema();
        assert_eq!(s.payload_width(), 15);
        assert_eq!(s.field_range(0), 0..4);
        assert_eq!(s.field_range(1), 4..12);
        assert_eq!(s.field_range(2), 12..15);
    }

    #[test]
    fn set_get_typed() {
        let s = schema();
        let mut p = s.empty_payload();
        s.set_u32(&mut p, 0, 0xDEAD_BEEF);
        s.set_u64(&mut p, 1, 0x1122_3344_5566_7788);
        s.set(&mut p, 2, b"xyz");
        assert_eq!(s.get_u32(&p, 0), 0xDEAD_BEEF);
        assert_eq!(s.get_u64(&p, 1), 0x1122_3344_5566_7788);
        assert_eq!(s.get(&p, 2), b"xyz");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn set_wrong_width_panics() {
        let s = schema();
        let mut p = s.empty_payload();
        s.set(&mut p, 2, b"toolong");
    }

    #[test]
    fn synthetic_schema_matches_paper_record_size() {
        let s = Schema::synthetic_100b();
        // 8-byte key + payload = 100 bytes logical record.
        assert_eq!(s.payload_width() + 8, 100);
    }
}
