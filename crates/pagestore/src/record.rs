//! Records: a primary key plus an opaque payload.
//!
//! The paper's synthetic workload uses "100-byte sized records and 4-byte
//! primary keys" (§4.1). We widen keys to `u64` (RIDs in column stores are
//! positions and can exceed 2^32) and keep payloads as raw bytes whose
//! interpretation belongs to [`crate::schema::Schema`].

/// Primary key (row stores) or RID (column stores). §2.1 uses "key" for
/// both, and so do we.
pub type Key = u64;

/// A table record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    /// Primary key / RID.
    pub key: Key,
    /// Payload bytes (all non-key attributes).
    pub payload: Vec<u8>,
}

/// Encoded size of the fixed record header: key (8) + payload length (2).
pub const RECORD_HEADER: usize = 10;

impl Record {
    /// Create a record.
    pub fn new(key: Key, payload: Vec<u8>) -> Self {
        Record { key, payload }
    }

    /// Create a record with a payload of `len` copies of a key-derived
    /// byte — handy for tests that want content checks.
    pub fn synthetic(key: Key, len: usize) -> Self {
        Record {
            key,
            payload: vec![(key % 251) as u8; len],
        }
    }

    /// Bytes needed to encode this record.
    pub fn encoded_len(&self) -> usize {
        RECORD_HEADER + self.payload.len()
    }

    /// Append the encoding of this record to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.key.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// Encode into a slice; `buf` must be exactly `encoded_len` bytes.
    pub fn encode(&self, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), self.encoded_len());
        buf[..8].copy_from_slice(&self.key.to_le_bytes());
        buf[8..10].copy_from_slice(&(self.payload.len() as u16).to_le_bytes());
        buf[10..].copy_from_slice(&self.payload);
    }

    /// Decode a record from the beginning of `buf`; returns it and the
    /// number of bytes consumed.
    pub fn decode(buf: &[u8]) -> (Record, usize) {
        let key = Key::from_le_bytes(buf[..8].try_into().expect("record header"));
        let len = u16::from_le_bytes(buf[8..10].try_into().expect("record header")) as usize;
        let payload = buf[10..10 + len].to_vec();
        (Record { key, payload }, RECORD_HEADER + len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let r = Record::new(42, vec![1, 2, 3, 4, 5]);
        let mut buf = vec![0u8; r.encoded_len()];
        r.encode(&mut buf);
        let (back, used) = Record::decode(&buf);
        assert_eq!(back, r);
        assert_eq!(used, r.encoded_len());
    }

    #[test]
    fn encode_into_appends() {
        let a = Record::new(1, vec![9]);
        let b = Record::new(2, vec![8, 7]);
        let mut buf = Vec::new();
        a.encode_into(&mut buf);
        b.encode_into(&mut buf);
        let (ra, na) = Record::decode(&buf);
        let (rb, _) = Record::decode(&buf[na..]);
        assert_eq!(ra, a);
        assert_eq!(rb, b);
    }

    #[test]
    fn empty_payload() {
        let r = Record::new(7, vec![]);
        let mut buf = vec![0u8; r.encoded_len()];
        r.encode(&mut buf);
        let (back, used) = Record::decode(&buf);
        assert_eq!(back, r);
        assert_eq!(used, RECORD_HEADER);
    }

    #[test]
    fn synthetic_payload_is_deterministic() {
        let a = Record::synthetic(100, 92);
        let b = Record::synthetic(100, 92);
        assert_eq!(a, b);
        assert_eq!(a.payload.len(), 92);
        // Paper-sized record: 8B key + 92B payload = 100B logical record.
        assert_eq!(a.encoded_len(), 102);
    }
}
