//! # masm-baselines — the comparison schemes of the MaSM paper
//!
//! Every scheme MaSM is evaluated against in §2 and §4:
//!
//! * [`inplace`] — conventional in-place updates: 4 KB read-modify-write
//!   I/Os against the main data disk. Concurrent with range scans they
//!   destroy the scan's sequential access pattern — the 1.5–4.1×
//!   slowdowns of Figures 3/4/9 and the ~tens-of-updates-per-second
//!   sustained rate of Figure 12.
//! * [`iu`] — Indexed Updates extended to SSDs (Figure 5(b)): updates
//!   append to SSD-resident tables, an in-memory index maps keys to
//!   entry locations, and range scans fetch entries with random 4 KB SSD
//!   reads — wasteful because "an entire SSD page has to be read and
//!   discarded for retrieving a single update entry" (up to 3.8× query
//!   slowdowns in §4.2).
//! * [`lsm`] — LSM applied to IU (Figure 5(c)): solves IU's random-read
//!   problem but copies each update through the level hierarchy,
//!   multiplying SSD writes (≈128× for a 2-level tree, ≈17× at the
//!   write-optimal height in the paper's 4 GB-flash/16 MB-memory
//!   setting) and so dividing SSD lifetime.

pub mod inplace;
pub mod iu;
pub mod lsm;

pub use inplace::InPlaceEngine;
pub use iu::IuEngine;
pub use lsm::LsmEngine;
