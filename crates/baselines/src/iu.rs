//! Indexed Updates (IU) directly extended to SSDs (§2.3, Figure 5(b)).
//!
//! The "ideal-case IU" of the paper's experiments: updates append
//! sequentially to SSD-resident tables (no random SSD writes), and the
//! positional index on the cached updates is kept **entirely in memory**
//! to dodge index-maintenance writes — note this costs far more memory
//! than MaSM. The flaw is on the read side: a range scan has to fetch
//! each matching update entry with its own 4 KB SSD read, discarding the
//! rest of the page.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use masm_core::merge::{MergeDataUpdates, MergeUpdates, UpdateStream};
use masm_core::update::{UpdateOp, UpdateRecord};
use masm_core::MasmResult;
use masm_pagestore::{Key, Record, Schema, TableHeap};
use masm_storage::{SessionHandle, SimDevice};

/// SSD I/O granularity for IU (the device's internal page: 4 KB, §4.1).
const IU_PAGE: u64 = 4096;

struct IuState {
    /// In-memory positional index: key → byte locations of its update
    /// entries on the SSD, in arrival (timestamp) order.
    index: BTreeMap<Key, Vec<(u64, u32)>>,
    /// Next append offset.
    tail: u64,
    /// Bytes not yet flushed (updates are appended through a one-page
    /// staging buffer so SSD writes stay sequential and page-sized).
    staged: Vec<u8>,
    staged_base: u64,
    updates: u64,
}

/// The ideal-case Indexed-Updates engine.
pub struct IuEngine {
    heap: Arc<TableHeap>,
    ssd: SimDevice,
    schema: Schema,
    state: Mutex<IuState>,
}

impl IuEngine {
    /// Create an IU engine caching updates on `ssd`.
    pub fn new(heap: Arc<TableHeap>, ssd: SimDevice, schema: Schema) -> Self {
        IuEngine {
            heap,
            ssd,
            schema,
            state: Mutex::new(IuState {
                index: BTreeMap::new(),
                tail: 0,
                staged: Vec::new(),
                staged_base: 0,
                updates: 0,
            }),
        }
    }

    /// The main-data heap.
    pub fn heap(&self) -> &Arc<TableHeap> {
        &self.heap
    }

    /// Number of cached updates.
    pub fn cached_updates(&self) -> u64 {
        self.state.lock().updates
    }

    /// Estimated memory footprint of the in-memory index, in bytes
    /// (the cost the paper points out IU pays that MaSM does not).
    pub fn index_memory_bytes(&self) -> u64 {
        let st = self.state.lock();
        st.index.values().map(|v| 8 + 12 * v.len() as u64).sum()
    }

    /// Append one update to the SSD tables and index it in memory.
    pub fn apply_update(
        &self,
        session: &SessionHandle,
        key: Key,
        op: UpdateOp,
        timestamp: u64,
    ) -> MasmResult<()> {
        let u = UpdateRecord::new(timestamp, key, op);
        let mut st = self.state.lock();
        let mut encoded = Vec::with_capacity(64);
        u.encode_into(&mut encoded);
        let offset = st.staged_base + st.staged.len() as u64;
        st.index
            .entry(key)
            .or_default()
            .push((offset, encoded.len() as u32));
        st.staged.extend_from_slice(&encoded);
        st.updates += 1;
        // Flush full pages sequentially.
        while st.staged.len() as u64 >= IU_PAGE {
            let page: Vec<u8> = st.staged.drain(..IU_PAGE as usize).collect();
            session.write(&self.ssd, st.staged_base, &page)?;
            st.staged_base += IU_PAGE;
            st.tail = st.staged_base;
        }
        Ok(())
    }

    /// Open a merged range scan: the heap scan plus per-entry random
    /// 4 KB SSD reads for every cached update in the range.
    pub fn begin_scan(
        &self,
        session: SessionHandle,
        begin: Key,
        end: Key,
        as_of: u64,
    ) -> MasmResult<impl Iterator<Item = Record> + use<'_>> {
        // Snapshot the entry locations in the range (index is in memory;
        // that lookup is free). Reads happen lazily, one 4 KB I/O per
        // entry — the waste the paper measures.
        let st = self.state.lock();
        let locations: Vec<(u64, u32)> = st
            .index
            .range(begin..=end)
            .flat_map(|(_, locs)| locs.iter().copied())
            .collect();
        let staged = st.staged.clone();
        let staged_base = st.staged_base;
        drop(st);

        // IU's reads are dependent lookups (index entry -> page read ->
        // merge), so unlike MaSM's deep-queued span reads they run at
        // effectively queue depth 1: we model them as synchronous reads
        // charged to the query session. This is why IU loses at mid-size
        // ranges even though its index narrows the entries perfectly.
        enum Pending {
            Inline(Vec<u8>),
            Flushed { off: u64, len: usize },
        }
        let mut pendings: Vec<Pending> = Vec::with_capacity(locations.len());
        for (off, len) in locations {
            let end_off = off + len as u64;
            if off >= staged_base {
                let s = (off - staged_base) as usize;
                pendings.push(Pending::Inline(staged[s..s + len as usize].to_vec()));
            } else if end_off > staged_base {
                // The entry straddles the flush boundary: head on the
                // device, tail still staged in memory.
                let page_off = off / IU_PAGE * IU_PAGE;
                let bytes = session.read(&self.ssd, page_off, staged_base - page_off)?;
                let mut entry = bytes[(off - page_off) as usize..].to_vec();
                entry.extend_from_slice(&staged[..(end_off - staged_base) as usize]);
                pendings.push(Pending::Inline(entry));
            } else {
                pendings.push(Pending::Flushed {
                    off,
                    len: len as usize,
                });
            }
        }
        let read_session = session.clone();
        let ssd = self.ssd.clone();
        let fetched = pendings.into_iter().filter_map(move |p| {
            let data = match p {
                Pending::Inline(bytes) => bytes,
                Pending::Flushed { off, len } => {
                    // One aligned 4 KB read per entry (two if it
                    // straddles a page boundary) — an entire page fetched
                    // per ~20 B entry: the waste §2.3 calls out.
                    let page_off = off / IU_PAGE * IU_PAGE;
                    let span = (off + len as u64 - page_off).div_ceil(IU_PAGE);
                    let bytes = read_session.read(&ssd, page_off, span * IU_PAGE).ok()?;
                    let skip = (off - page_off) as usize;
                    bytes[skip..skip + len].to_vec()
                }
            };
            UpdateRecord::decode(&data).map(|(u, _)| u)
        });
        // Index range order is key order; arrival order within a key is
        // timestamp order — already the (key, ts) order MergeUpdates
        // expects.
        let stream: UpdateStream = Box::new(fetched);
        let merged = MergeUpdates::new(vec![stream], self.schema.clone(), as_of);
        let data = self.heap.scan_range(session, begin, end).with_ts();
        Ok(MergeDataUpdates::new(data, merged, self.schema.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masm_pagestore::HeapConfig;
    use masm_storage::{DeviceProfile, SimClock};

    fn schema() -> Schema {
        Schema::synthetic_100b()
    }

    fn payload(v: u32) -> Vec<u8> {
        let s = schema();
        let mut p = s.empty_payload();
        s.set_u32(&mut p, 0, v);
        p
    }

    fn setup(n: u64) -> (IuEngine, SessionHandle) {
        let clock = SimClock::new();
        let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
        let session = SessionHandle::fresh(clock);
        heap.bulk_load(
            &session,
            (0..n).map(|i| Record::new(i * 2, payload(i as u32))),
            1.0,
        )
        .unwrap();
        (IuEngine::new(heap, ssd, schema()), session)
    }

    #[test]
    fn updates_visible_through_scan() {
        let (e, s) = setup(500);
        e.apply_update(&s, 11, UpdateOp::Insert(payload(110)), 1)
            .unwrap();
        e.apply_update(&s, 20, UpdateOp::Delete, 2).unwrap();
        let keys: Vec<Key> = e
            .begin_scan(s, 0, 50, u64::MAX)
            .unwrap()
            .map(|r| r.key)
            .collect();
        assert!(keys.contains(&11));
        assert!(!keys.contains(&20));
    }

    #[test]
    fn appends_are_sequential_ssd_writes() {
        let (e, s) = setup(100);
        let ssd = e.ssd.clone();
        ssd.reset_stats();
        for i in 0..2000u64 {
            e.apply_update(&s, i % 200, UpdateOp::Replace(payload(9)), i + 1)
                .unwrap();
        }
        let stats = ssd.stats();
        assert!(stats.write_ops > 5);
        assert!(stats.random_writes <= 1, "{stats:?}");
    }

    #[test]
    fn scans_pay_one_random_read_per_flushed_entry() {
        let (e, s) = setup(5000);
        // Enough updates to flush many pages.
        for i in 0..2000u64 {
            e.apply_update(&s, (i * 7) % 10000, UpdateOp::Replace(payload(1)), i + 1)
                .unwrap();
        }
        let ssd = e.ssd.clone();
        ssd.reset_stats();
        let got: Vec<Key> = e
            .begin_scan(s, 1000, 1200, u64::MAX)
            .unwrap()
            .map(|r| r.key)
            .collect();
        assert!(!got.is_empty());
        let stats = ssd.stats();
        // Roughly one read per cached entry in range (~2000 * 201/10000
        // on flushed pages) — and each read is a full 4 KB for a ~20 B
        // entry: the paper's wasted-bandwidth observation.
        assert!(stats.read_ops >= 10, "{stats:?}");
        assert!(stats.bytes_read >= stats.read_ops * IU_PAGE);
    }

    #[test]
    fn index_memory_grows_with_updates() {
        let (e, s) = setup(100);
        let before = e.index_memory_bytes();
        for i in 0..100u64 {
            e.apply_update(&s, i, UpdateOp::Delete, i + 1).unwrap();
        }
        assert!(e.index_memory_bytes() > before);
        assert_eq!(e.cached_updates(), 100);
    }

    #[test]
    fn duplicate_updates_merge_in_ts_order() {
        let (e, s) = setup(100);
        e.apply_update(&s, 10, UpdateOp::Replace(payload(1)), 1)
            .unwrap();
        e.apply_update(&s, 10, UpdateOp::Replace(payload(2)), 2)
            .unwrap();
        let rec = e.begin_scan(s, 10, 10, u64::MAX).unwrap().next().unwrap();
        assert_eq!(schema().get_u32(&rec.payload, 0), 2, "later replace wins");
    }
}
