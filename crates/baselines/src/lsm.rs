//! LSM applied to IU (§2.3, Figure 5(c)).
//!
//! A log-structured merge-tree over the SSD update cache: `C0` in
//! memory, `C1..Ch` on flash with capacities in geometric progression
//! `size(C_{i+1})/size(C_i) = r`. Rolling propagation is modeled as a
//! full merge of level `i` into level `i+1` whenever level `i`
//! overflows — each such merge rewrites the old contents of `i+1`, which
//! is precisely where the write amplification comes from: about `r + 1`
//! writes per update for levels `1..h−1` and `(r+1)/2` for level `h`.
//!
//! Scans are efficient (each level is a sorted run with a run index —
//! no random reads), so LSM fixes IU's query problem; the paper rejects
//! it because the extra writes cut the SSD's lifetime by an order of
//! magnitude (§2.3: 17× at the write-optimal height for the 4 GB-flash /
//! 16 MB-memory setting).

use std::sync::Arc;

use parking_lot::Mutex;

use masm_core::config::MasmConfig;
use masm_core::merge::{
    fold_duplicates, KWayUpdates, MergeDataUpdates, MergeUpdates, UpdateStream,
};
use masm_core::run::{write_run, RunScan, SortedRun};
use masm_core::update::{UpdateOp, UpdateRecord};
use masm_core::MasmResult;
use masm_pagestore::{Key, Record, Schema, TableHeap};
use masm_storage::{SessionHandle, SimDevice};

struct LsmState {
    /// C0: the in-memory level, kept sorted on flush.
    c0: Vec<UpdateRecord>,
    c0_bytes: usize,
    /// C1..Ch: one sorted run per flash level (None = empty level).
    levels: Vec<Option<Arc<SortedRun>>>,
    /// Bump allocator for run space.
    next_offset: u64,
    ingested: u64,
    ingested_bytes: u64,
    next_run_id: u64,
}

/// Configuration of the LSM-IU baseline.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Bytes of memory for C0.
    pub mem_bytes: usize,
    /// Number of flash-resident levels `h`.
    pub levels: u32,
    /// Size ratio `r` between adjacent levels.
    pub ratio: u64,
    /// Run encoding parameters (SSD page size, index granularity).
    pub run_cfg: MasmConfig,
}

impl LsmConfig {
    /// An LSM sized like the paper's example: memory `mem_bytes`, `h`
    /// levels, ratio derived from flash/memory.
    pub fn with_levels(mem_bytes: usize, flash_bytes: u64, h: u32) -> Self {
        let ratio = ((flash_bytes as f64 / mem_bytes as f64).powf(1.0 / h as f64)).round() as u64;
        LsmConfig {
            mem_bytes,
            levels: h,
            ratio: ratio.max(2),
            run_cfg: MasmConfig::small_for_tests(),
        }
    }
}

/// The LSM-IU baseline engine.
pub struct LsmEngine {
    heap: Arc<TableHeap>,
    ssd: SimDevice,
    schema: Schema,
    cfg: LsmConfig,
    state: Mutex<LsmState>,
}

impl LsmEngine {
    /// Create an LSM engine caching updates on `ssd`.
    pub fn new(heap: Arc<TableHeap>, ssd: SimDevice, schema: Schema, cfg: LsmConfig) -> Self {
        let levels = cfg.levels as usize;
        LsmEngine {
            heap,
            ssd,
            schema,
            cfg,
            state: Mutex::new(LsmState {
                c0: Vec::new(),
                c0_bytes: 0,
                levels: vec![None; levels],
                next_offset: 0,
                ingested: 0,
                ingested_bytes: 0,
                next_run_id: 0,
            }),
        }
    }

    /// The main-data heap.
    pub fn heap(&self) -> &Arc<TableHeap> {
        &self.heap
    }

    /// Updates ingested and their logical bytes.
    pub fn ingest_stats(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.ingested, st.ingested_bytes)
    }

    /// Measured write amplification: SSD bytes written per logical
    /// update byte ingested (compare with
    /// [`masm_core::theory::lsm_writes_per_update`]).
    pub fn write_amplification(&self) -> f64 {
        let (_, logical) = self.ingest_stats();
        self.ssd.stats().write_amplification(logical)
    }

    /// Capacity of flash level `i` (0-based) in bytes.
    fn level_capacity(&self, i: usize) -> u64 {
        self.cfg.mem_bytes as u64 * self.cfg.ratio.pow(i as u32 + 1)
    }

    /// Ingest one update; cascades level merges as levels overflow.
    pub fn apply_update(
        &self,
        session: &SessionHandle,
        key: Key,
        op: UpdateOp,
        timestamp: u64,
    ) -> MasmResult<()> {
        let u = UpdateRecord::new(timestamp, key, op);
        let mut st = self.state.lock();
        st.ingested += 1;
        st.ingested_bytes += u.encoded_len() as u64;
        st.c0_bytes += u.encoded_len();
        st.c0.push(u);
        if st.c0_bytes >= self.cfg.mem_bytes {
            self.flush_c0(session, &mut st)?;
        }
        Ok(())
    }

    fn flush_c0(&self, session: &SessionHandle, st: &mut LsmState) -> MasmResult<()> {
        let mut updates = std::mem::take(&mut st.c0);
        st.c0_bytes = 0;
        updates.sort_by_key(|a| (a.key, a.ts));
        self.merge_into_level(session, st, 0, updates)
    }

    /// Merge `incoming` (sorted) into flash level `i`, rewriting the
    /// level; cascade downward if it overflows.
    fn merge_into_level(
        &self,
        session: &SessionHandle,
        st: &mut LsmState,
        i: usize,
        incoming: Vec<UpdateRecord>,
    ) -> MasmResult<()> {
        let mut streams: Vec<UpdateStream> = vec![Box::new(incoming.into_iter())];
        if let Some(existing) = st.levels[i].take() {
            streams.push(Box::new(RunScan::new(
                self.ssd.clone(),
                session.clone(),
                existing,
                0,
                Key::MAX,
            )));
        }
        let merged: Vec<UpdateRecord> = KWayUpdates::new(streams).collect();
        // LSM trees merge duplicate entries during propagation.
        let merged = fold_duplicates(merged, &self.schema, |_, _| true);
        if merged.is_empty() {
            return Ok(());
        }
        let bytes: u64 = merged.iter().map(|u| u.encoded_len() as u64).sum();
        if bytes > self.level_capacity(i) && i + 1 < st.levels.len() {
            // Level overflows: propagate the whole content down.
            return self.merge_into_level(session, st, i + 1, merged);
        }
        let id = st.next_run_id;
        st.next_run_id += 1;
        let base = st.next_offset;
        st.next_offset += bytes;
        let run = write_run(session, &self.ssd, &self.cfg.run_cfg, id, base, 1, &merged)?;
        st.levels[i] = Some(Arc::new(run));
        Ok(())
    }

    /// Open a merged range scan: one index-guided run scan per level —
    /// no per-entry random reads (LSM's strength).
    pub fn begin_scan(
        &self,
        session: SessionHandle,
        begin: Key,
        end: Key,
        as_of: u64,
    ) -> MasmResult<impl Iterator<Item = Record> + use<'_>> {
        let st = self.state.lock();
        let mut streams: Vec<UpdateStream> = Vec::new();
        let mut c0: Vec<UpdateRecord> = st
            .c0
            .iter()
            .filter(|u| u.key >= begin && u.key <= end)
            .cloned()
            .collect();
        c0.sort_by_key(|a| (a.key, a.ts));
        streams.push(Box::new(c0.into_iter()));
        for level in st.levels.iter().flatten() {
            streams.push(Box::new(RunScan::new(
                self.ssd.clone(),
                session.clone(),
                Arc::clone(level),
                begin,
                end,
            )));
        }
        drop(st);
        let merged = MergeUpdates::new(streams, self.schema.clone(), as_of);
        let data = self.heap.scan_range(session, begin, end).with_ts();
        Ok(MergeDataUpdates::new(data, merged, self.schema.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masm_pagestore::HeapConfig;
    use masm_storage::{DeviceProfile, SimClock};

    fn schema() -> Schema {
        Schema::synthetic_100b()
    }

    fn payload(v: u32) -> Vec<u8> {
        let s = schema();
        let mut p = s.empty_payload();
        s.set_u32(&mut p, 0, v);
        p
    }

    fn setup(n: u64, mem: usize, h: u32) -> (LsmEngine, SessionHandle) {
        let clock = SimClock::new();
        let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
        let session = SessionHandle::fresh(clock);
        heap.bulk_load(
            &session,
            (0..n).map(|i| Record::new(i * 2, payload(i as u32))),
            1.0,
        )
        .unwrap();
        let cfg = LsmConfig::with_levels(mem, mem as u64 * 256, h);
        (LsmEngine::new(heap, ssd, schema(), cfg), session)
    }

    #[test]
    fn updates_visible_through_scan() {
        let (e, s) = setup(500, 4096, 2);
        e.apply_update(&s, 11, UpdateOp::Insert(payload(110)), 1)
            .unwrap();
        e.apply_update(&s, 20, UpdateOp::Delete, 2).unwrap();
        // Force flushes with more traffic.
        for i in 0..2000u64 {
            e.apply_update(&s, 2000 + i, UpdateOp::Replace(payload(1)), 10 + i)
                .unwrap();
        }
        let keys: Vec<Key> = e
            .begin_scan(s, 0, 50, u64::MAX)
            .unwrap()
            .map(|r| r.key)
            .collect();
        assert!(keys.contains(&11), "insert visible after cascades");
        assert!(!keys.contains(&20), "delete visible after cascades");
    }

    #[test]
    fn write_amplification_grows_with_fill() {
        let (e, s) = setup(100, 2048, 2);
        for i in 0..20_000u64 {
            e.apply_update(&s, i % 5000, UpdateOp::Delete, i + 1)
                .unwrap();
        }
        let amp = e.write_amplification();
        // Every entry is written far more than once (the paper's point).
        assert!(amp > 2.0, "write amplification {amp}");
    }

    #[test]
    fn deeper_trees_write_less_per_update_when_ratio_shrinks() {
        // h=1 (huge ratio) must amplify more than h=4 (small ratio), as
        // in the paper's 128 vs 17 example.
        let run = |h: u32| {
            let (e, s) = setup(100, 1024, h);
            for i in 0..30_000u64 {
                e.apply_update(&s, (i * 17) % 65_536, UpdateOp::Delete, i + 1)
                    .unwrap();
            }
            e.write_amplification()
        };
        let shallow = run(1);
        let deep = run(4);
        assert!(
            shallow > deep,
            "h=1 amp {shallow} must exceed h=4 amp {deep}"
        );
    }

    #[test]
    fn scans_use_sequential_reads_not_per_entry_randoms() {
        let (e, s) = setup(2000, 2048, 2);
        for i in 0..5000u64 {
            e.apply_update(&s, (i * 3) % 4000, UpdateOp::Replace(payload(1)), i + 1)
                .unwrap();
        }
        let ssd = e.ssd.clone();
        ssd.reset_stats();
        let n = e.begin_scan(s, 0, 4000, u64::MAX).unwrap().count();
        assert!(n > 0);
        let stats = ssd.stats();
        // Block-granular span reads per level (one op per run block),
        // not thousands of per-entry *random* reads: IU would issue one
        // random 4 KB read per cached entry (~5000 here).
        assert!(stats.read_ops < 1000, "{stats:?}");
        assert!(
            stats.sequential_ops > stats.random_ops * 5,
            "span reads must be sequential: {stats:?}"
        );
    }
}
