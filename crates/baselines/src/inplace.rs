//! Conventional in-place updates (§2.2).
//!
//! Each update is a random read-modify-write of a 4 KB data page on the
//! main disk, exactly like an OLTP system would do it. Correctness is
//! trivial — queries always see fresh data — but the random I/Os
//! interleave with range scans on the same device and both workloads
//! lose their access-pattern locality.

use std::sync::Arc;

use masm_core::update::{UpdateOp, UpdateRecord};
use masm_core::{MasmError, MasmResult};
use masm_pagestore::{Key, Record, Schema, TableHeap};
use masm_storage::SessionHandle;

/// An engine that applies every update directly to the main data.
pub struct InPlaceEngine {
    heap: Arc<TableHeap>,
    schema: Schema,
    applied: std::sync::atomic::AtomicU64,
}

impl InPlaceEngine {
    /// Wrap a heap.
    pub fn new(heap: Arc<TableHeap>, schema: Schema) -> Self {
        InPlaceEngine {
            heap,
            schema,
            applied: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The underlying heap (scans go straight to it — no merging needed).
    pub fn heap(&self) -> &Arc<TableHeap> {
        &self.heap
    }

    /// Updates applied so far.
    pub fn applied(&self) -> u64 {
        self.applied.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Apply one update: random 4 KB read, modify, random 4 KB write.
    pub fn apply_update(
        &self,
        session: &SessionHandle,
        key: Key,
        op: UpdateOp,
        timestamp: u64,
    ) -> MasmResult<()> {
        let logical = self
            .heap
            .locate(key)
            .ok_or(MasmError::Corrupt("in-place update on empty table"))?;
        let page = self.heap.read_page(session, logical)?;
        let mut records: Vec<Record> = page.records().collect();
        let update = UpdateRecord::new(timestamp, key, op);
        match records.binary_search_by_key(&key, |r| r.key) {
            Ok(i) => {
                let base = records.remove(i);
                if let Some(new) = update.apply_to(Some(base), &self.schema) {
                    records.insert(i, new);
                }
            }
            Err(i) => {
                if let Some(new) = update.apply_to(None, &self.schema) {
                    records.insert(i, new);
                }
            }
        }
        self.heap
            .replace_page_records(session, logical, records, timestamp)?;
        self.applied
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masm_core::update::FieldPatch;
    use masm_pagestore::HeapConfig;
    use masm_storage::{DeviceProfile, SimClock, SimDevice};

    fn schema() -> Schema {
        Schema::synthetic_100b()
    }

    fn payload(v: u32) -> Vec<u8> {
        let s = schema();
        let mut p = s.empty_payload();
        s.set_u32(&mut p, 0, v);
        p
    }

    fn setup(n: u64) -> (InPlaceEngine, SessionHandle) {
        let clock = SimClock::new();
        let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
        let session = SessionHandle::fresh(clock);
        // Load at 90% fill so inserts usually fit without splits.
        heap.bulk_load(
            &session,
            (0..n).map(|i| Record::new(i * 2, payload(i as u32))),
            0.9,
        )
        .unwrap();
        (InPlaceEngine::new(heap, schema()), session)
    }

    fn scan_keys(e: &InPlaceEngine, s: &SessionHandle, a: Key, b: Key) -> Vec<Key> {
        e.heap()
            .scan_range(s.clone(), a, b)
            .map(|r| r.key)
            .collect()
    }

    #[test]
    fn insert_delete_modify_roundtrip() {
        let (e, s) = setup(500);
        e.apply_update(&s, 11, UpdateOp::Insert(payload(110)), 1)
            .unwrap();
        e.apply_update(&s, 20, UpdateOp::Delete, 2).unwrap();
        e.apply_update(
            &s,
            30,
            UpdateOp::Modify(vec![FieldPatch {
                field: 0,
                value: 303u32.to_le_bytes().to_vec(),
            }]),
            3,
        )
        .unwrap();
        let keys = scan_keys(&e, &s, 0, 50);
        assert!(keys.contains(&11));
        assert!(!keys.contains(&20));
        let rec = e.heap().scan_range(s, 30, 30).next().unwrap();
        assert_eq!(schema().get_u32(&rec.payload, 0), 303);
        assert_eq!(e.applied(), 3);
    }

    #[test]
    fn updates_cost_random_disk_ios() {
        let (e, s) = setup(10_000);
        let disk = e.heap().device().clone();
        disk.reset_stats();
        // Spread updates across the table: every one is a seek.
        for i in 0..20u64 {
            e.apply_update(&s, (i * 997) % 20_000, UpdateOp::Replace(payload(1)), i + 1)
                .unwrap();
        }
        let stats = disk.stats();
        assert!(stats.random_ops >= 20, "{stats:?}");
        // Read-modify-write: at least 2 I/Os per update (one extra read
        // is bookkeeping-free in our heap).
        assert!(stats.read_ops >= 20 && stats.write_ops >= 20, "{stats:?}");
    }

    #[test]
    fn sustained_rate_is_paper_magnitude() {
        // ~48 in-place updates/s in Figure 12; we accept 20..150.
        let (e, s) = setup(50_000);
        let start = s.now();
        let n = 200u64;
        for i in 0..n {
            e.apply_update(
                &s,
                (i * 12_347) % 100_000,
                UpdateOp::Replace(payload(2)),
                i + 1,
            )
            .unwrap();
        }
        let elapsed_s = (s.now() - start) as f64 / 1e9;
        let rate = n as f64 / elapsed_s;
        assert!((20.0..150.0).contains(&rate), "rate {rate}/s");
    }

    #[test]
    fn update_of_missing_key_on_empty_table_errors() {
        let clock = SimClock::new();
        let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
        let e = InPlaceEngine::new(heap, schema());
        let s = SessionHandle::fresh(clock);
        assert!(e.apply_update(&s, 5, UpdateOp::Delete, 1).is_err());
    }
}
